"""Sequence backends for the walker's internal state (paper §3.3–3.4).

The internal state is a linear sequence of items (character records and
placeholder pieces, see :mod:`repro.core.records`).  The walker needs to

* map a prepare-version index to the item holding that character,
* map an item back to its effect-version index,
* insert new records at arbitrary positions,
* split placeholder pieces, and
* adjust visibility counters when an item's ``s_p`` / ``s_e`` state changes.

Two interchangeable backends implement this contract:

* :class:`ListSequence` — a plain Python list.  Lookups are linear scans, so
  the cost per operation is O(n).  This mirrors the paper's simple TypeScript
  reference implementation and doubles as the correctness oracle in tests.
* :class:`~repro.core.order_statistic_tree.TreeSequence` — a counted B+-tree
  (an order statistic tree, §3.4) with O(log n) lookups and updates; this is
  what the optimised walker uses.

Positions are expressed in *units*: a record is one unit, a placeholder piece
of length L is L units.  A :class:`Cursor` identifies a gap between units.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from .ids import EventId
from .records import (
    INSERTED,
    CrdtRecord,
    Item,
    OriginRef,
    PlaceholderPiece,
    placeholder_origin,
)

__all__ = ["Cursor", "SequenceBackend", "ListSequence"]

_synthetic_counter = itertools.count()


def synthetic_record_id() -> EventId:
    """A locally unique id for a record carved out of a placeholder.

    Placeholder ids only need to be unique within the local replica (§3.6);
    they are never replicated, compared across replicas, or persisted.
    """
    return EventId("__placeholder__", next(_synthetic_counter))


@dataclass(slots=True)
class Cursor:
    """A gap in the item sequence: before unit ``offset`` of ``item``.

    ``item is None`` means the cursor is at the very end of the sequence.
    ``offset`` is only meaningful for placeholder pieces (records are a single
    unit, so a cursor inside a record is impossible).
    """

    item: Item | None
    offset: int = 0

    @property
    def at_end(self) -> bool:
        return self.item is None


class SequenceBackend:
    """Abstract contract shared by the list and tree backends."""

    # -- construction / reset -------------------------------------------------
    def clear(self, placeholder_length: int) -> None:
        """Reset to a single placeholder of ``placeholder_length`` units."""
        raise NotImplementedError

    # -- lookups --------------------------------------------------------------
    def find_insert_cursor(self, prepare_pos: int) -> Cursor:
        """Leftmost gap with exactly ``prepare_pos`` prepare-visible units before it."""
        raise NotImplementedError

    def find_visible_unit(self, prepare_pos: int) -> tuple[Item, int]:
        """The unit that is the ``prepare_pos``-th prepare-visible unit."""
        raise NotImplementedError

    def origin_left_of_cursor(self, cursor: Cursor) -> OriginRef:
        """Reference to the unit immediately before ``cursor`` (None = start)."""
        raise NotImplementedError

    def next_existing_in_prepare(self, cursor: Cursor) -> OriginRef:
        """Reference to the first unit at/after ``cursor`` that exists in the
        prepare version (``s_p >= 1`` or placeholder); None = document end."""
        raise NotImplementedError

    def unit_position_of_ref(self, ref: OriginRef) -> int:
        """Absolute unit index of an origin reference."""
        raise NotImplementedError

    def effect_position_of_item(self, item: Item, offset: int = 0) -> int:
        """Number of effect-visible units strictly before the given unit."""
        raise NotImplementedError

    def iter_items_from_cursor(self, cursor: Cursor) -> Iterator[Item]:
        """Items from the cursor's item (inclusive) to the end of the sequence."""
        raise NotImplementedError

    def iter_items(self) -> Iterator[Item]:
        raise NotImplementedError

    # -- mutation -------------------------------------------------------------
    def insert_record_at_cursor(self, cursor: Cursor, record: CrdtRecord) -> None:
        """Insert ``record`` at the gap identified by ``cursor``."""
        raise NotImplementedError

    def insert_record_before_item(self, target: Item | None, record: CrdtRecord) -> None:
        """Insert ``record`` immediately before ``target`` (None = append)."""
        raise NotImplementedError

    def convert_placeholder_unit(
        self, piece: PlaceholderPiece, offset: int, record: CrdtRecord
    ) -> None:
        """Replace one placeholder unit with ``record`` (splitting the piece)."""
        raise NotImplementedError

    def update_item_counts(self, item: Item, d_prepare: int, d_effect: int) -> None:
        """Notify the backend that ``item``'s visibility counters changed."""
        raise NotImplementedError

    # -- statistics -----------------------------------------------------------
    def total_units(self) -> int:
        raise NotImplementedError

    def prepare_length(self) -> int:
        """Total prepare-visible units (document length in the prepare version)."""
        raise NotImplementedError

    def effect_length(self) -> int:
        """Total effect-visible units (document length in the effect version)."""
        raise NotImplementedError

    def memory_items(self) -> int:
        """Number of items currently held (used by the memory benchmarks)."""
        raise NotImplementedError


class ListSequence(SequenceBackend):
    """Internal-state sequence stored in a flat Python list (O(n) operations)."""

    def __init__(self, placeholder_length: int = 0) -> None:
        self._items: list[Item] = []
        self._carved: dict[int, CrdtRecord] = {}
        self.clear(placeholder_length)

    # -- construction / reset -------------------------------------------------
    def clear(self, placeholder_length: int) -> None:
        self._items = []
        self._carved = {}
        if placeholder_length > 0:
            self._items.append(PlaceholderPiece(base=0, length=placeholder_length))

    # -- lookups --------------------------------------------------------------
    def find_insert_cursor(self, prepare_pos: int) -> Cursor:
        remaining = prepare_pos
        for item in self._items:
            if remaining == 0:
                return Cursor(item, 0)
            visible = item.prepare_units
            if visible >= remaining:
                if isinstance(item, PlaceholderPiece):
                    if visible == remaining:
                        # The gap right after this piece: expressed as a
                        # cursor before the *next* item so that a split is
                        # avoided when possible.
                        continue_from = remaining
                        return self._cursor_after(item, continue_from)
                    return Cursor(item, remaining)
                # A record contributes at most one visible unit; the gap after
                # it is before the next item.
                return self._cursor_after(item, 1)
            remaining -= visible
        if remaining != 0:
            raise IndexError(
                f"insert position {prepare_pos} beyond prepare-visible length "
                f"{self.prepare_length()}"
            )
        return Cursor(None)

    def _cursor_after(self, item: Item, consumed_units: int) -> Cursor:
        """Cursor at the gap after consuming ``consumed_units`` of ``item``."""
        if isinstance(item, PlaceholderPiece) and consumed_units < item.length:
            return Cursor(item, consumed_units)
        idx = self._items.index(item)
        if idx + 1 < len(self._items):
            return Cursor(self._items[idx + 1], 0)
        return Cursor(None)

    def find_visible_unit(self, prepare_pos: int) -> tuple[Item, int]:
        remaining = prepare_pos
        for item in self._items:
            visible = item.prepare_units
            if visible > remaining:
                return item, remaining if isinstance(item, PlaceholderPiece) else 0
            remaining -= visible
        raise IndexError(
            f"delete position {prepare_pos} beyond prepare-visible length "
            f"{self.prepare_length()}"
        )

    def origin_left_of_cursor(self, cursor: Cursor) -> OriginRef:
        if cursor.item is not None and cursor.offset > 0:
            piece = cursor.item
            assert isinstance(piece, PlaceholderPiece)
            return placeholder_origin(piece.base + cursor.offset - 1)
        idx = len(self._items) if cursor.at_end else self._items.index(cursor.item)
        if idx == 0:
            return None
        prev = self._items[idx - 1]
        if isinstance(prev, PlaceholderPiece):
            return placeholder_origin(prev.base + prev.length - 1)
        return prev

    def next_existing_in_prepare(self, cursor: Cursor) -> OriginRef:
        if cursor.at_end:
            return None
        start = self._items.index(cursor.item)
        for item in self._items[start:]:
            if isinstance(item, PlaceholderPiece):
                offset = cursor.offset if item is cursor.item else 0
                return placeholder_origin(item.base + offset)
            if item.exists_in_prepare:
                return item
        return None

    def unit_position_of_ref(self, ref: OriginRef) -> int:
        item, offset = self._resolve_ref(ref)
        pos = 0
        for other in self._items:
            if other is item:
                return pos + offset
            pos += other.units
        raise KeyError(f"reference {ref!r} not found in sequence")

    def effect_position_of_item(self, item: Item, offset: int = 0) -> int:
        pos = 0
        for other in self._items:
            if other is item:
                return pos + offset
            pos += other.effect_units
        raise KeyError(f"item {item!r} not found in sequence")

    def iter_items_from_cursor(self, cursor: Cursor) -> Iterator[Item]:
        if cursor.at_end:
            return iter(())
        start = self._items.index(cursor.item)
        return iter(self._items[start:])

    def iter_items(self) -> Iterator[Item]:
        return iter(self._items)

    # -- mutation -------------------------------------------------------------
    def insert_record_at_cursor(self, cursor: Cursor, record: CrdtRecord) -> None:
        if cursor.at_end:
            self._items.append(record)
            return
        idx = self._items.index(cursor.item)
        if cursor.offset > 0:
            piece = cursor.item
            assert isinstance(piece, PlaceholderPiece)
            left, right = self._split_piece(piece, cursor.offset)
            self._items[idx : idx + 1] = [left, record, right]
            return
        self._items.insert(idx, record)

    def insert_record_before_item(self, target: Item | None, record: CrdtRecord) -> None:
        if target is None:
            self._items.append(record)
            return
        idx = self._items.index(target)
        self._items.insert(idx, record)

    def convert_placeholder_unit(
        self, piece: PlaceholderPiece, offset: int, record: CrdtRecord
    ) -> None:
        idx = self._items.index(piece)
        replacement: list[Item] = []
        if offset > 0:
            replacement.append(PlaceholderPiece(base=piece.base, length=offset))
        replacement.append(record)
        if offset + 1 < piece.length:
            replacement.append(
                PlaceholderPiece(base=piece.base + offset + 1, length=piece.length - offset - 1)
            )
        self._items[idx : idx + 1] = replacement
        self._carved[piece.base + offset] = record

    def update_item_counts(self, item: Item, d_prepare: int, d_effect: int) -> None:
        # The list backend recomputes counts on demand, so nothing to do.
        return None

    # -- statistics -----------------------------------------------------------
    def total_units(self) -> int:
        return sum(item.units for item in self._items)

    def prepare_length(self) -> int:
        return sum(item.prepare_units for item in self._items)

    def effect_length(self) -> int:
        return sum(item.effect_units for item in self._items)

    def memory_items(self) -> int:
        return len(self._items)

    # -- helpers --------------------------------------------------------------
    def _split_piece(
        self, piece: PlaceholderPiece, offset: int
    ) -> tuple[PlaceholderPiece, PlaceholderPiece]:
        """Split ``piece`` into two pieces at ``offset`` (both non-empty)."""
        left = PlaceholderPiece(base=piece.base, length=offset)
        right = PlaceholderPiece(base=piece.base + offset, length=piece.length - offset)
        return left, right

    def _resolve_ref(self, ref: OriginRef) -> tuple[Item, int]:
        if isinstance(ref, CrdtRecord):
            return ref, 0
        if isinstance(ref, tuple) and len(ref) == 2 and ref[0] == "ph":
            original_offset = ref[1]
            carved = self._carved.get(original_offset)
            if carved is not None:
                return carved, 0
            for item in self._items:
                if isinstance(item, PlaceholderPiece):
                    if item.base <= original_offset < item.base + item.length:
                        return item, original_offset - item.base
            raise KeyError(f"placeholder offset {original_offset} not found")
        raise TypeError(f"cannot resolve origin reference {ref!r}")
