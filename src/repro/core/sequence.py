"""Sequence backends for the walker's internal state (paper §3.3–3.4).

The internal state is a linear sequence of items (record runs and placeholder
pieces, see :mod:`repro.core.records`).  The walker needs to

* map a prepare-version index to the unit (item + offset) holding that
  character,
* map a unit back to its effect-version index,
* insert new record runs at arbitrary positions,
* split record runs and placeholder pieces when an event addresses only part
  of them, and
* adjust visibility counters when an item's ``s_p`` / ``s_e`` state changes.

Two interchangeable backends implement this contract:

* :class:`ListSequence` — a plain Python list.  Lookups are linear scans, so
  the cost per operation is O(n).  This mirrors the paper's simple TypeScript
  reference implementation and doubles as the correctness oracle in tests.
* :class:`~repro.core.order_statistic_tree.TreeSequence` — a counted B+-tree
  (an order statistic tree, §3.4) with O(log n) lookups and updates; this is
  what the optimised walker uses.

Positions are expressed in *units*: an item of length L is L units.  A
:class:`Cursor` identifies a gap between units.  Because origin references are
id-based (see :mod:`repro.core.records`), each backend also maintains a
*record index* — the paper's second B-tree — mapping ``(agent, seq)``
character ids to the record run currently covering them; the index is a range
map over id spans, so it stays O(runs + splits) in size rather than O(chars).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from .ids import EventId
from .range_map import RangeIndex
from .records import (
    CrdtRecord,
    Item,
    OriginRef,
    PlaceholderPiece,
    placeholder_origin,
)

__all__ = [
    "Cursor",
    "SequenceBackend",
    "ListSequence",
    "synthetic_record_id",
    "carved_record_id",
    "SYNTHETIC_AGENT",
]

_synthetic_counter = itertools.count()

#: Agent name used for record runs carved out of a placeholder (§3.6).
SYNTHETIC_AGENT = "__placeholder__"


def synthetic_record_id(length: int = 1) -> EventId:
    """A locally unique id span for a run carved out of a placeholder.

    Placeholder ids only need to be unique within the local replica (§3.6);
    they are never replicated, compared across replicas, or persisted.  The
    returned id names the first character of the carved run; ``length``
    consecutive seqs are reserved.
    """
    start = next(_synthetic_counter)
    for _ in range(length - 1):
        next(_synthetic_counter)
    return EventId(SYNTHETIC_AGENT, start)


def carved_record_id(original_offset: int) -> EventId:
    """The id of the carved-record character at an original placeholder offset.

    Carved runs are keyed by their position in the *original* placeholder
    (their ``ph_base``), so the id is deterministic: ``offset`` within one
    clear-to-clear era names the same character forever.  Runs carved out of
    adjacent placeholder spans by *separate* deletes therefore get contiguous
    id spans and can re-merge like any other split record — with the
    counter-based :func:`synthetic_record_id` they never could, because the
    counter advances between carves.  Offsets are unique within an era (a
    placeholder character can only be carved once) and the whole id space is
    reset with the state, so collisions are impossible.
    """
    return EventId(SYNTHETIC_AGENT, original_offset)


@dataclass(slots=True)
class Cursor:
    """A gap in the item sequence: before unit ``offset`` of ``item``.

    ``item is None`` means the cursor is at the very end of the sequence.
    ``offset > 0`` places the gap strictly inside a multi-unit item (a
    placeholder piece or a record run), which the mutation methods resolve by
    splitting the item.
    """

    item: Item | None
    offset: int = 0

    @property
    def at_end(self) -> bool:
        return self.item is None


class SequenceBackend:
    """Abstract contract shared by the list and tree backends.

    The registry-management helpers at the bottom are concrete: both backends
    store their record index and carved index the same way and only differ in
    how the item sequence itself is organised.
    """

    def __init__(self) -> None:
        self._record_index: dict[str, RangeIndex[CrdtRecord]] = {}
        self._carved_index: RangeIndex[CrdtRecord] = RangeIndex(_record_length)

    # -- construction / reset -------------------------------------------------
    def clear(self, placeholder_length: int) -> None:
        """Reset to a single placeholder of ``placeholder_length`` units."""
        raise NotImplementedError

    # -- lookups --------------------------------------------------------------
    def find_insert_cursor(self, prepare_pos: int) -> Cursor:
        """Leftmost gap with exactly ``prepare_pos`` prepare-visible units before it."""
        raise NotImplementedError

    def find_visible_unit(self, prepare_pos: int) -> tuple[Item, int]:
        """The unit that is the ``prepare_pos``-th prepare-visible unit."""
        raise NotImplementedError

    def origin_left_of_cursor(self, cursor: Cursor) -> OriginRef:
        """Id-based reference to the unit immediately before ``cursor`` (None = start)."""
        raise NotImplementedError

    def next_existing_in_prepare(self, cursor: Cursor) -> OriginRef:
        """Reference to the first unit at/after ``cursor`` that exists in the
        prepare version (``s_p >= 1`` or placeholder); None = document end."""
        raise NotImplementedError

    def unit_position_of_ref(self, ref: OriginRef) -> int:
        """Absolute unit index of an origin reference."""
        item, offset = self.resolve_ref(ref)
        return self.unit_position_of_item(item, offset)

    def unit_position_of_item(self, item: Item, offset: int = 0) -> int:
        """Number of units strictly before the given unit."""
        raise NotImplementedError

    def effect_position_of_item(self, item: Item, offset: int = 0) -> int:
        """Number of effect-visible units strictly before the given unit.

        ``offset`` is a unit offset within ``item`` and must only be non-zero
        for items that are effect-visible (placeholders or undeleted records),
        where unit offsets and effect offsets coincide.
        """
        raise NotImplementedError

    def iter_items_from_cursor(self, cursor: Cursor) -> Iterator[Item]:
        """Items from the cursor's item (inclusive) to the end of the sequence."""
        raise NotImplementedError

    def iter_items(self) -> Iterator[Item]:
        raise NotImplementedError

    # -- mutation -------------------------------------------------------------
    def insert_record_at_cursor(self, cursor: Cursor, record: CrdtRecord) -> None:
        """Insert ``record`` at the gap identified by ``cursor`` (splitting the
        item the cursor points into when the gap is strictly inside it)."""
        raise NotImplementedError

    def insert_record_before_item(self, target: Item | None, record: CrdtRecord) -> None:
        """Insert ``record`` immediately before ``target`` (None = append)."""
        raise NotImplementedError

    def convert_placeholder_run(
        self, piece: PlaceholderPiece, offset: int, record: CrdtRecord
    ) -> None:
        """Replace ``record.length`` placeholder units starting at ``offset``
        with ``record`` (splitting the piece as needed)."""
        raise NotImplementedError

    def split_record(self, record: CrdtRecord, offset: int) -> CrdtRecord:
        """Split ``record`` before character ``offset``; return the right half.

        Aggregate counts are unchanged; the right half is registered with the
        id index (and the carved index, for carved runs).
        """
        raise NotImplementedError

    def merge_into_left(self, left: CrdtRecord, right: CrdtRecord) -> None:
        """Coalesce ``right`` (the item directly after ``left``) into ``left``.

        The inverse of :meth:`split_record`: ``right`` is removed from the
        sequence and its indices, and ``left`` grows to cover its characters.
        The caller guarantees mergeability (:meth:`CrdtRecord.can_merge_with`),
        which makes the operation lossless — a later split at the same
        boundary reconstructs byte-identical records.
        """
        raise NotImplementedError

    def next_item(self, item: Item) -> Item | None:
        """The item directly after ``item`` in the sequence (None at the end)."""
        raise NotImplementedError

    def prev_item(self, item: Item) -> Item | None:
        """The item directly before ``item`` in the sequence (None at the start)."""
        raise NotImplementedError

    def update_item_counts(self, item: Item, d_prepare: int, d_effect: int) -> None:
        """Notify the backend that ``item``'s visibility counters changed."""
        raise NotImplementedError

    # -- statistics -----------------------------------------------------------
    def total_units(self) -> int:
        raise NotImplementedError

    def prepare_length(self) -> int:
        """Total prepare-visible units (document length in the prepare version)."""
        raise NotImplementedError

    def effect_length(self) -> int:
        """Total effect-visible units (document length in the effect version)."""
        raise NotImplementedError

    def memory_items(self) -> int:
        """Number of items currently held (used by the memory benchmarks)."""
        raise NotImplementedError

    # -- record index (concrete) ----------------------------------------------
    def _reset_indices(self) -> None:
        self._record_index = {}
        self._carved_index = RangeIndex(_record_length)

    def register_record(self, record: CrdtRecord) -> None:
        """Register ``record``'s id span (and carved span) with the indices."""
        index = self._record_index.get(record.id.agent)
        if index is None:
            index = self._record_index[record.id.agent] = RangeIndex(_record_length)
        index.register(record.id.seq, record)
        if record.ph_base is not None:
            self._carved_index.register(record.ph_base, record)

    def _absorb_record(self, left: CrdtRecord, right: CrdtRecord) -> None:
        """Index bookkeeping shared by both backends' :meth:`merge_into_left`:
        drop ``right``'s registrations and grow ``left`` over its span."""
        index = self._record_index.get(right.id.agent)
        if index is not None:
            index.remove(right.id.seq)
        if right.ph_base is not None:
            self._carved_index.remove(right.ph_base)
        left.length += right.length

    def record_at(self, event_id: EventId) -> tuple[CrdtRecord, int]:
        """The (record, offset) currently covering the character ``event_id``."""
        index = self._record_index.get(event_id.agent)
        found = index.find(event_id.seq) if index is not None else None
        if found is None:
            raise KeyError(f"no record covers id {event_id}")
        return found

    def record_spans(self, start_id: EventId, length: int) -> list[tuple[CrdtRecord, int, int]]:
        """All (record, offset, span_len) covering ids ``start_id .. +length``.

        The spans partition the id range; splits performed after the ids were
        first applied are reflected (each fragment is returned separately).
        """
        spans: list[tuple[CrdtRecord, int, int]] = []
        seq = start_id.seq
        end = start_id.seq + length
        while seq < end:
            record, offset = self.record_at(EventId(start_id.agent, seq))
            span_len = min(record.length - offset, end - seq)
            spans.append((record, offset, span_len))
            seq += span_len
        return spans

    def carved_record_at(self, original_offset: int) -> tuple[CrdtRecord, int] | None:
        """The carved (record, offset) covering an original placeholder offset."""
        return self._carved_index.find(original_offset)

    def resolve_ref(self, ref: OriginRef) -> tuple[Item, int]:
        """Resolve an origin reference to the (item, unit offset) holding it."""
        if isinstance(ref, EventId):
            return self.record_at(ref)
        if isinstance(ref, tuple) and len(ref) == 2 and ref[0] == "ph":
            original_offset = ref[1]
            carved = self.carved_record_at(original_offset)
            if carved is not None:
                return carved
            return self.resolve_placeholder(original_offset)
        raise TypeError(f"cannot resolve origin reference {ref!r}")

    def resolve_placeholder(self, original_offset: int) -> tuple[PlaceholderPiece, int]:
        """The placeholder piece currently holding an original offset."""
        raise NotImplementedError


def _record_length(record: CrdtRecord) -> int:
    return record.length


class ListSequence(SequenceBackend):
    """Internal-state sequence stored in a flat Python list (O(n) operations)."""

    def __init__(self, placeholder_length: int = 0) -> None:
        super().__init__()
        self._items: list[Item] = []
        self.clear(placeholder_length)

    # -- construction / reset -------------------------------------------------
    def clear(self, placeholder_length: int) -> None:
        self._items = []
        self._reset_indices()
        if placeholder_length > 0:
            self._items.append(PlaceholderPiece(base=0, length=placeholder_length))

    # -- lookups --------------------------------------------------------------
    def find_insert_cursor(self, prepare_pos: int) -> Cursor:
        remaining = prepare_pos
        for item in self._items:
            if remaining == 0:
                return Cursor(item, 0)
            visible = item.prepare_units
            if visible >= remaining:
                if visible == remaining:
                    # The gap right after this item: expressed as a cursor
                    # before the *next* item so that a split is avoided when
                    # possible (and so concurrent siblings after the item are
                    # scanned by the integration rule).
                    return self._cursor_after(item)
                # Strictly inside a multi-unit item (prepare-visible items
                # have unit offset == prepare offset).
                return Cursor(item, remaining)
            remaining -= visible
        if remaining != 0:
            raise IndexError(
                f"insert position {prepare_pos} beyond prepare-visible length "
                f"{self.prepare_length()}"
            )
        return Cursor(None)

    def _cursor_after(self, item: Item) -> Cursor:
        """Cursor at the gap immediately after all units of ``item``."""
        idx = self._index_of_item(item)
        if idx + 1 < len(self._items):
            return Cursor(self._items[idx + 1], 0)
        return Cursor(None)

    def find_visible_unit(self, prepare_pos: int) -> tuple[Item, int]:
        remaining = prepare_pos
        for item in self._items:
            visible = item.prepare_units
            if visible > remaining:
                return item, remaining
            remaining -= visible
        raise IndexError(
            f"delete position {prepare_pos} beyond prepare-visible length "
            f"{self.prepare_length()}"
        )

    def origin_left_of_cursor(self, cursor: Cursor) -> OriginRef:
        if cursor.item is not None and cursor.offset > 0:
            return _ref_to_unit(cursor.item, cursor.offset - 1)
        idx = len(self._items) if cursor.at_end else self._index_of_item(cursor.item)
        if idx == 0:
            return None
        prev = self._items[idx - 1]
        return _ref_to_unit(prev, prev.units - 1)

    def next_existing_in_prepare(self, cursor: Cursor) -> OriginRef:
        if cursor.at_end:
            return None
        start = self._index_of_item(cursor.item)
        for item in self._items[start:]:
            offset = cursor.offset if item is cursor.item else 0
            if isinstance(item, PlaceholderPiece):
                return placeholder_origin(item.base + offset)
            if item.exists_in_prepare:
                return item.id_at(offset)
        return None

    def unit_position_of_item(self, item: Item, offset: int = 0) -> int:
        pos = 0
        for other in self._items:
            if other is item:
                return pos + offset
            pos += other.units
        raise KeyError(f"item {item!r} not found in sequence")

    def effect_position_of_item(self, item: Item, offset: int = 0) -> int:
        pos = 0
        for other in self._items:
            if other is item:
                return pos + offset
            pos += other.effect_units
        raise KeyError(f"item {item!r} not found in sequence")

    def iter_items_from_cursor(self, cursor: Cursor) -> Iterator[Item]:
        if cursor.at_end:
            return iter(())
        start = self._index_of_item(cursor.item)
        return iter(self._items[start:])

    def iter_items(self) -> Iterator[Item]:
        return iter(self._items)

    # -- mutation -------------------------------------------------------------
    def insert_record_at_cursor(self, cursor: Cursor, record: CrdtRecord) -> None:
        if cursor.at_end:
            self._items.append(record)
            self.register_record(record)
            return
        idx = self._index_of_item(cursor.item)
        if cursor.offset > 0:
            target = cursor.item
            if isinstance(target, PlaceholderPiece):
                left, right = self._split_piece(target, cursor.offset)
                self._items[idx : idx + 1] = [left, record, right]
            else:
                right = target.split(cursor.offset)
                self._items[idx + 1 : idx + 1] = [record, right]
                self.register_record(right)
            self.register_record(record)
            return
        self._items.insert(idx, record)
        self.register_record(record)

    def insert_record_before_item(self, target: Item | None, record: CrdtRecord) -> None:
        if target is None:
            self._items.append(record)
        else:
            self._items.insert(self._index_of_item(target), record)
        self.register_record(record)

    def convert_placeholder_run(
        self, piece: PlaceholderPiece, offset: int, record: CrdtRecord
    ) -> None:
        idx = self._index_of_item(piece)
        right_start = offset + record.length
        if right_start > piece.length:
            raise ValueError("carved run exceeds the placeholder piece")
        replacement: list[Item] = []
        if offset > 0:
            replacement.append(PlaceholderPiece(base=piece.base, length=offset))
        replacement.append(record)
        if right_start < piece.length:
            replacement.append(
                PlaceholderPiece(base=piece.base + right_start, length=piece.length - right_start)
            )
        self._items[idx : idx + 1] = replacement
        if record.ph_base is None:
            record.ph_base = piece.base + offset
        self.register_record(record)

    def split_record(self, record: CrdtRecord, offset: int) -> CrdtRecord:
        idx = self._index_of_item(record)
        right = record.split(offset)
        self._items.insert(idx + 1, right)
        self.register_record(right)
        return right

    def merge_into_left(self, left: CrdtRecord, right: CrdtRecord) -> None:
        del self._items[self._index_of_item(right)]
        self._absorb_record(left, right)

    def next_item(self, item: Item) -> Item | None:
        idx = self._index_of_item(item)
        return self._items[idx + 1] if idx + 1 < len(self._items) else None

    def prev_item(self, item: Item) -> Item | None:
        idx = self._index_of_item(item)
        return self._items[idx - 1] if idx > 0 else None

    def update_item_counts(self, item: Item, d_prepare: int, d_effect: int) -> None:
        # The list backend recomputes counts on demand, so nothing to do.
        return None

    # -- statistics -----------------------------------------------------------
    def total_units(self) -> int:
        return sum(item.units for item in self._items)

    def prepare_length(self) -> int:
        return sum(item.prepare_units for item in self._items)

    def effect_length(self) -> int:
        return sum(item.effect_units for item in self._items)

    def memory_items(self) -> int:
        return len(self._items)

    # -- helpers --------------------------------------------------------------
    def _index_of_item(self, item: Item) -> int:
        for i, candidate in enumerate(self._items):
            if candidate is item:
                return i
        raise KeyError(f"item {item!r} not found in sequence")

    def _split_piece(
        self, piece: PlaceholderPiece, offset: int
    ) -> tuple[PlaceholderPiece, PlaceholderPiece]:
        """Split ``piece`` into two pieces at ``offset`` (both non-empty)."""
        left = PlaceholderPiece(base=piece.base, length=offset)
        right = PlaceholderPiece(base=piece.base + offset, length=piece.length - offset)
        return left, right

    def resolve_placeholder(self, original_offset: int) -> tuple[PlaceholderPiece, int]:
        for item in self._items:
            if isinstance(item, PlaceholderPiece):
                if item.base <= original_offset < item.base + item.length:
                    return item, original_offset - item.base
        raise KeyError(f"placeholder offset {original_offset} not found")


def _ref_to_unit(item: Item, offset: int) -> OriginRef:
    """Id-based reference to the ``offset``-th unit of ``item``."""
    if isinstance(item, PlaceholderPiece):
        return placeholder_origin(item.base + offset)
    return item.id_at(offset)
