"""An Automerge-like CRDT baseline.

Automerge keeps the *full operation history* of a document: every operation —
including deletions and the content of deleted characters — is stored in the
document file together with its actor, counter and causal dependencies, and
loading a document means replaying that history to rebuild the CRDT state.
This module reproduces those characteristics on top of the reference CRDT
engine:

* ``merge_event_graph`` behaves like the reference CRDT (full per-character
  state, no critical-version optimisations),
* ``save`` serialises the complete operation history (per-operation actor /
  counter / kind / position / dependency columns plus all inserted text,
  whether or not it was later deleted) — the format whose size Figure 11
  compares against the Eg-walker event-graph encoding, and
* ``load`` parses that history and replays it, which is why loading costs as
  much as merging for Automerge in Figure 8.

It is a stand-in, not a byte-compatible reimplementation of the Automerge
columnar format; DESIGN.md §2 records the substitution.
"""

from __future__ import annotations

from ..core.event_graph import EventGraph, expand_to_chars
from ..core.ids import EventId, OpKind, delete_op, insert_op
from ..storage.varint import ByteReader, ByteWriter
from .ref_crdt import RefCRDTDocument

__all__ = ["AutomergeLikeDocument"]

_MAGIC = b"AMLK"


class AutomergeLikeDocument(RefCRDTDocument):
    """Full-history CRDT document in the style of Automerge."""

    def __init__(self) -> None:
        super().__init__()
        self.source_graph: EventGraph | None = None

    def merge_event_graph(self, graph: EventGraph) -> str:
        self.source_graph = graph
        return super().merge_event_graph(graph)

    # ------------------------------------------------------------------
    # Persistence: the full operation history
    # ------------------------------------------------------------------
    def save(self) -> bytes:
        if self.source_graph is None:
            raise RuntimeError("nothing to save: merge an event graph first")
        # Automerge stores one row per *operation* — per character — so the
        # run-event graph is expanded to the per-character oracle form first
        # (runs are only formed over the actor column, matching the real
        # format's cost profile that Figure 11 measures).
        graph = expand_to_chars(self.source_graph)
        writer = ByteWriter()
        writer.write_bytes(_MAGIC)

        # Actor table.
        actors: list[str] = []
        actor_index: dict[str, int] = {}
        for event in graph.events():
            if event.id.agent not in actor_index:
                actor_index[event.id.agent] = len(actors)
                actors.append(event.id.agent)
        writer.write_uvarint(len(actors))
        for actor in actors:
            writer.write_string(actor)

        # Per-operation columns.  Automerge stores one row per operation with
        # actor, counter, action, position reference, a lamport timestamp and
        # the value; runs are only formed over the actor column.
        writer.write_uvarint(len(graph))
        content_parts: list[str] = []
        for event in graph.events():
            writer.write_uvarint(actor_index[event.id.agent])
            writer.write_uvarint(event.id.seq)
            writer.write_uvarint(int(event.op.kind))
            writer.write_svarint(event.op.pos)
            writer.write_uvarint(event.index)  # lamport-style op counter
            writer.write_uvarint(len(event.parents))
            for parent in event.parents:
                writer.write_uvarint(event.index - parent)
            if event.op.is_insert:
                content_parts.append(event.op.content)
        writer.write_string("".join(content_parts))
        return writer.getvalue()

    @classmethod
    def load(cls, data: bytes) -> "AutomergeLikeDocument":
        """Parse the stored history and replay it to rebuild the document."""
        graph = cls.decode_history(data)
        doc = cls()
        doc.merge_event_graph(graph)
        return doc

    @staticmethod
    def decode_history(data: bytes) -> EventGraph:
        reader = ByteReader(data)
        if reader.read_bytes(4) != _MAGIC:
            raise ValueError("not an Automerge-like document file")
        actor_count = reader.read_uvarint()
        actors = [reader.read_string() for _ in range(actor_count)]
        count = reader.read_uvarint()
        rows: list[tuple[EventId, OpKind, int, tuple[int, ...]]] = []
        for index in range(count):
            actor = actors[reader.read_uvarint()]
            seq = reader.read_uvarint()
            kind = OpKind(reader.read_uvarint())
            pos = reader.read_svarint()
            reader.read_uvarint()  # lamport counter (redundant with the index)
            parent_count = reader.read_uvarint()
            parents = tuple(
                sorted(index - reader.read_uvarint() for _ in range(parent_count))
            )
            rows.append((EventId(actor, seq), kind, pos, parents))
        content = reader.read_string()
        graph = EventGraph()
        content_iter = iter(content)
        for event_id, kind, pos, parents in rows:
            if kind is OpKind.INSERT:
                op = insert_op(pos, next(content_iter))
            else:
                op = delete_op(pos)
            graph.add_event(event_id, parents, op, parents_are_indices=True)
        return graph
