"""The reference CRDT baseline (paper §4.2, "Ref CRDT" / DT-CRDT).

The paper compares Eg-walker against a reference CRDT implementation that
shares most of its code with the Eg-walker implementation, so that the
difference measured is the *algorithmic* one — a traditional CRDT must build
and retain per-character metadata (ids, origins, tombstones) for the whole
document, persist it, and reload it before any editing can happen — rather
than incidental implementation differences.  This module follows the same
methodology: the reference CRDT replays an event graph with the same internal
machinery as the walker, but

* never clears its state (there is no critical-version optimisation in a
  traditional CRDT),
* retains every record, including tombstones, as its steady-state document
  (this is what Figure 10 measures),
* persists that state — not the event graph — as its file format, and
* must rebuild the full structure when loading a document from disk, which is
  why CRDT loads cost the same as merges in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.causal_graph import CausalGraph
from ..core.event_graph import EventGraph
from ..core.ids import EventId
from ..core.internal_state import InternalState
from ..core.order_statistic_tree import TreeSequence
from ..core.records import CrdtRecord, OriginRef
from ..core.topo_sort import sort_branch_aware
from ..storage.varint import ByteReader, ByteWriter
from .list_crdt import CrdtItem

__all__ = ["RefCRDTDocument"]

_MAGIC = b"RCDT"


@dataclass(slots=True)
class _StoredItem:
    """One persisted CRDT item: a character plus its metadata."""

    agent: str
    seq: int
    origin_left: EventId | None
    origin_right: EventId | None
    content: str
    deleted: bool


class RefCRDTDocument:
    """A full, persistent list-CRDT document built from an event graph."""

    def __init__(self) -> None:
        self.items: list[_StoredItem] = []
        self.by_id: dict[EventId, _StoredItem] = {}
        self.text = ""

    # ------------------------------------------------------------------
    # Merging (the timed operation of Figure 8)
    # ------------------------------------------------------------------
    def merge_event_graph(self, graph: EventGraph) -> str:
        """Integrate an entire remote editing history into this document.

        The replay itself is run-length encoded (the shared Eg-walker
        machinery); the *retained* state is expanded to one item per
        character, because that is exactly the cost profile of a traditional
        CRDT that this baseline exists to measure.
        """
        causal = CausalGraph(graph)
        # Like the converter, the materialisation step reads per-run origins
        # out of the final record sequence, so spans must not be re-merged.
        state = InternalState(TreeSequence(0), merge_spans=False)
        order = sort_branch_aware(graph, range(len(graph)))
        # Per-character content of every insert run, keyed by the run's first
        # character id (content of character (agent, seq+k) is content[k]).
        content_of: dict[EventId, str] = {}

        prepare_version: tuple[int, ...] = ()
        for idx in order:
            event = graph[idx]
            op = event.op
            if prepare_version != event.parents:
                only_prepare, only_target = causal.diff(prepare_version, event.parents)
                for other in reversed(only_prepare):
                    other_op = graph[other].op
                    state.retreat(graph.id_of(other), other_op.is_insert, other_op.length)
                for other in only_target:
                    other_op = graph[other].op
                    state.advance(graph.id_of(other), other_op.is_insert, other_op.length)
            if op.is_insert:
                state.apply_insert(event.id, op.pos, op.length)
                content_of[event.id] = op.content
            else:
                state.apply_delete(event.id, op.pos, op.length)
            prepare_version = (idx,)

        self._materialise(graph, state, content_of)
        return self.text

    def _materialise(
        self, graph: EventGraph, state: InternalState, content_of: dict[EventId, str]
    ) -> None:
        """Turn the replay's record sequence into the persistent CRDT state.

        Record runs are expanded into per-character items: the first character
        of a run keeps the run's origins, each later character chains onto its
        predecessor (the same expansion the converter performs).
        """
        items: list[_StoredItem] = []
        text_parts: list[str] = []
        for record in state.iter_records():
            if not isinstance(record, CrdtRecord):  # pragma: no cover - defensive
                raise RuntimeError("placeholders cannot appear in a full replay")
            run_event_index, run_offset = graph.locate(record.id)
            run_start = graph[run_event_index].id
            run_content = content_of.get(run_start, "")
            for k in range(record.length):
                char_id = record.id.advance(k)
                offset_in_run = run_offset + k
                content = (
                    run_content[offset_in_run] if offset_in_run < len(run_content) else ""
                )
                item = _StoredItem(
                    agent=char_id.agent,
                    seq=char_id.seq,
                    origin_left=(
                        _origin_id(record.origin_left)
                        if k == 0
                        else EventId(char_id.agent, char_id.seq - 1)
                    ),
                    origin_right=_origin_id(record.origin_right),
                    content=content,
                    deleted=record.ever_deleted,
                )
                items.append(item)
                if not item.deleted:
                    text_parts.append(content)
        self.items = items
        self.by_id = {EventId(i.agent, i.seq): i for i in items}
        self.text = "".join(text_parts)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def item_count(self) -> int:
        return len(self.items)

    def tombstone_count(self) -> int:
        return sum(1 for item in self.items if item.deleted)

    # ------------------------------------------------------------------
    # Persistence (the CRDT file format + the timed load of Figure 8)
    # ------------------------------------------------------------------
    def save(self) -> bytes:
        """Serialise the full CRDT state (including tombstones)."""
        writer = ByteWriter()
        writer.write_bytes(_MAGIC)
        agents: list[str] = []
        agent_index: dict[str, int] = {}
        for item in self.items:
            if item.agent not in agent_index:
                agent_index[item.agent] = len(agents)
                agents.append(item.agent)
        writer.write_uvarint(len(agents))
        for agent in agents:
            writer.write_string(agent)
        writer.write_uvarint(len(self.items))
        for item in self.items:
            writer.write_uvarint(agent_index[item.agent])
            writer.write_uvarint(item.seq)
            _write_origin(writer, agent_index, item.origin_left)
            _write_origin(writer, agent_index, item.origin_right)
            writer.write_uvarint(1 if item.deleted else 0)
            writer.write_string(item.content)
        return writer.getvalue()

    @classmethod
    def load(cls, data: bytes) -> "RefCRDTDocument":
        """Rebuild the document (items, id index and text) from disk bytes.

        This is the operation the CRDT rows of Figure 8 label "load": the full
        per-character structure must be reconstructed before the document can
        be edited.
        """
        reader = ByteReader(data)
        if reader.read_bytes(4) != _MAGIC:
            raise ValueError("not a reference-CRDT document file")
        agent_count = reader.read_uvarint()
        agents = [reader.read_string() for _ in range(agent_count)]
        count = reader.read_uvarint()
        doc = cls()
        items: list[_StoredItem] = []
        text_parts: list[str] = []
        for _ in range(count):
            agent = agents[reader.read_uvarint()]
            seq = reader.read_uvarint()
            origin_left = _read_origin(reader, agents)
            origin_right = _read_origin(reader, agents)
            deleted = bool(reader.read_uvarint())
            content = reader.read_string()
            item = _StoredItem(
                agent=agent,
                seq=seq,
                origin_left=origin_left,
                origin_right=origin_right,
                content=content,
                deleted=deleted,
            )
            items.append(item)
            if not deleted:
                text_parts.append(content)
        doc.items = items
        doc.by_id = {EventId(i.agent, i.seq): i for i in items}
        doc.text = "".join(text_parts)
        return doc

    def as_crdt_items(self) -> list[CrdtItem]:
        """Expose the state as generic CRDT items (used by tests)."""
        return [
            CrdtItem(
                id=EventId(item.agent, item.seq),
                origin_left=item.origin_left,
                origin_right=item.origin_right,
                content=item.content,
                deleted=item.deleted,
            )
            for item in self.items
        ]


def _origin_id(ref: OriginRef) -> EventId | None:
    if ref is None:
        return None
    if isinstance(ref, EventId):
        return ref
    raise TypeError("unexpected placeholder origin in a full replay")


def _write_origin(writer: ByteWriter, agent_index: dict[str, int], origin: EventId | None) -> None:
    if origin is None:
        writer.write_uvarint(0)
        return
    writer.write_uvarint(1)
    writer.write_uvarint(agent_index.setdefault(origin.agent, len(agent_index)))
    writer.write_uvarint(origin.seq)


def _read_origin(reader: ByteReader, agents: list[str]) -> EventId | None:
    if not reader.read_uvarint():
        return None
    agent = agents[reader.read_uvarint()]
    seq = reader.read_uvarint()
    return EventId(agent, seq)
