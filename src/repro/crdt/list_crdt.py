"""A traditional ID-based list CRDT (the substrate of §2.5 and the baselines).

This is a self-contained, classic collaborative-text CRDT in the style of
YATA / Yjs: every character carries a globally unique id, insertions reference
the ids of their left and right neighbours at generation time (their
*origins*), and deletions reference the id of the deleted character.  All
replicas integrate concurrent insertions with the same deterministic rule
("YjsMod"), so they converge regardless of delivery order, provided delivery
is causal.

It serves three roles in this reproduction:

* the independent correctness oracle for Eg-walker in the differential tests
  (its integration logic shares no code with the walker),
* the per-branch simulated replicas used to convert index-based editing traces
  into ID-based CRDT operations (see :mod:`repro.crdt.converter`), and
* the document type underlying the Yjs-like / Automerge-like baselines.

The implementation favours clarity over speed (lookups are linear scans); the
performance-oriented baselines in :mod:`repro.crdt.ref_crdt` use the
order-statistic tree instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.ids import EventId

__all__ = ["CrdtInsertOp", "CrdtDeleteOp", "CrdtOp", "CrdtItem", "SimpleListCRDT"]


@dataclass(frozen=True, slots=True)
class CrdtInsertOp:
    """An ID-based insertion: place ``content`` between the origin items."""

    id: EventId
    origin_left: EventId | None
    origin_right: EventId | None
    content: str

    @property
    def is_insert(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class CrdtDeleteOp:
    """An ID-based deletion: mark the character ``target`` as deleted."""

    id: EventId
    target: EventId

    @property
    def is_insert(self) -> bool:
        return False


CrdtOp = CrdtInsertOp | CrdtDeleteOp


@dataclass(slots=True, eq=False)
class CrdtItem:
    """One character of CRDT state (a tombstone once ``deleted`` is set)."""

    id: EventId
    origin_left: EventId | None
    origin_right: EventId | None
    content: str
    deleted: bool = False


class SimpleListCRDT:
    """A single replica of the ID-based list CRDT.

    The replica can generate operations from index-based local edits
    (:meth:`local_insert`, :meth:`local_delete`) and integrate operations
    received from other replicas (:meth:`apply`).  Remote operations whose
    dependencies have not arrived yet are buffered until they are applicable,
    giving causal delivery on top of any transport.
    """

    def __init__(self, agent: str = "crdt") -> None:
        self.agent = agent
        self._items: list[CrdtItem] = []
        self._by_id: dict[EventId, CrdtItem] = {}
        self._next_seq = 0
        self._applied_ops: set[EventId] = set()
        self._pending: list[CrdtOp] = []

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def text(self) -> str:
        return "".join(item.content for item in self._items if not item.deleted)

    def __len__(self) -> int:
        return sum(1 for item in self._items if not item.deleted)

    def item_count(self) -> int:
        """Total items including tombstones (memory accounting)."""
        return len(self._items)

    def iter_items(self) -> Iterator[CrdtItem]:
        return iter(self._items)

    def has_applied(self, op_id: EventId) -> bool:
        return op_id in self._applied_ops

    # ------------------------------------------------------------------
    # Local editing (index-based -> ID-based)
    # ------------------------------------------------------------------
    def local_insert(self, pos: int, content: str) -> list[CrdtInsertOp]:
        """Insert ``content`` at visible index ``pos``; returns the ops to broadcast."""
        ops: list[CrdtInsertOp] = []
        for offset, char in enumerate(content):
            ops.append(self._local_insert_char(pos + offset, char))
        return ops

    def _local_insert_char(self, pos: int, char: str) -> CrdtInsertOp:
        raw = self._raw_index_of_visible_gap(pos)
        origin_left = self._items[raw - 1].id if raw > 0 else None
        origin_right = self._items[raw].id if raw < len(self._items) else None
        op = CrdtInsertOp(
            id=EventId(self.agent, self._next_seq),
            origin_left=origin_left,
            origin_right=origin_right,
            content=char,
        )
        self._next_seq += 1
        self._integrate(op)
        self._applied_ops.add(op.id)
        return op

    def local_delete(self, pos: int, length: int = 1) -> list[CrdtDeleteOp]:
        """Delete ``length`` visible characters starting at ``pos``."""
        ops: list[CrdtDeleteOp] = []
        for _ in range(length):
            target = self._visible_item_at(pos)
            op = CrdtDeleteOp(id=EventId(self.agent, self._next_seq), target=target.id)
            self._next_seq += 1
            target.deleted = True
            self._applied_ops.add(op.id)
            ops.append(op)
        return ops

    # ------------------------------------------------------------------
    # Remote operations
    # ------------------------------------------------------------------
    def apply(self, op: CrdtOp) -> bool:
        """Integrate one remote operation; returns True if it was applied.

        Operations that are not yet applicable (missing origin or target) are
        buffered and retried after each successful application.
        """
        if op.id in self._applied_ops:
            return True
        if not self._applicable(op):
            self._pending.append(op)
            return False
        self._apply_now(op)
        self._drain_pending()
        return True

    def apply_all(self, ops: Iterable[CrdtOp]) -> None:
        for op in ops:
            self.apply(op)
        if self._pending:
            raise RuntimeError(
                f"{len(self._pending)} operations could not be applied: missing causal "
                "dependencies"
            )

    def merge(self, other: "SimpleListCRDT") -> None:
        """Merge another replica's state by re-applying its operations."""
        for item in other._items:
            self.apply(
                CrdtInsertOp(
                    id=item.id,
                    origin_left=item.origin_left,
                    origin_right=item.origin_right,
                    content=item.content,
                )
            )
        # Deletions are replicated as "the item is deleted somewhere".
        for item in other._items:
            if item.deleted:
                local = self._by_id.get(item.id)
                if local is not None and not local.deleted:
                    local.deleted = True

    def fork(self, agent: str) -> "SimpleListCRDT":
        """A deep copy of this replica under a new agent name."""
        clone = SimpleListCRDT(agent)
        clone._items = [
            CrdtItem(
                id=item.id,
                origin_left=item.origin_left,
                origin_right=item.origin_right,
                content=item.content,
                deleted=item.deleted,
            )
            for item in self._items
        ]
        clone._by_id = {item.id: item for item in clone._items}
        clone._applied_ops = set(self._applied_ops)
        clone._next_seq = 0
        return clone

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _applicable(self, op: CrdtOp) -> bool:
        if isinstance(op, CrdtInsertOp):
            left_ok = op.origin_left is None or op.origin_left in self._by_id
            right_ok = op.origin_right is None or op.origin_right in self._by_id
            return left_ok and right_ok
        return op.target in self._by_id

    def _apply_now(self, op: CrdtOp) -> None:
        if isinstance(op, CrdtInsertOp):
            self._integrate(op)
        else:
            self._by_id[op.target].deleted = True
        self._applied_ops.add(op.id)

    def _drain_pending(self) -> None:
        progressed = True
        while progressed and self._pending:
            progressed = False
            still_pending: list[CrdtOp] = []
            for op in self._pending:
                if op.id in self._applied_ops:
                    progressed = True
                    continue
                if self._applicable(op):
                    self._apply_now(op)
                    progressed = True
                else:
                    still_pending.append(op)
            self._pending = still_pending

    def _raw_index_of_visible_gap(self, pos: int) -> int:
        """Raw index of the leftmost gap with ``pos`` visible items before it."""
        if pos == 0:
            return 0
        seen = 0
        for raw, item in enumerate(self._items):
            if not item.deleted:
                seen += 1
                if seen == pos:
                    return raw + 1
        if seen == pos:
            return len(self._items)
        raise IndexError(f"insert position {pos} beyond visible length {seen}")

    def _visible_item_at(self, pos: int) -> CrdtItem:
        seen = 0
        for item in self._items:
            if not item.deleted:
                if seen == pos:
                    return item
                seen += 1
        raise IndexError(f"position {pos} beyond visible length {seen}")

    def _raw_index_of_id(self, item_id: EventId | None, default: int) -> int:
        if item_id is None:
            return default
        target = self._by_id[item_id]
        for raw, item in enumerate(self._items):
            if item is target:
                return raw
        raise KeyError(item_id)  # pragma: no cover - defensive

    def _integrate(self, op: CrdtInsertOp) -> None:
        """The YjsMod integration rule (same rule as the walker, independent code)."""
        if op.id in self._by_id:
            return
        left = self._raw_index_of_id(op.origin_left, -1)
        right = self._raw_index_of_id(op.origin_right, len(self._items))
        dest = left + 1
        scanning = False
        i = left + 1
        while True:
            if not scanning:
                dest = i
            if i == len(self._items) or i == right:
                break
            other = self._items[i]
            oleft = self._raw_index_of_id(other.origin_left, -1)
            oright = self._raw_index_of_id(other.origin_right, len(self._items))
            if oleft < left or (oleft == left and oright == right and op.id < other.id):
                break
            if oleft == left:
                scanning = oright < right
            i += 1
        item = CrdtItem(
            id=op.id,
            origin_left=op.origin_left,
            origin_right=op.origin_right,
            content=op.content,
        )
        self._items.insert(dest, item)
        self._by_id[op.id] = item
