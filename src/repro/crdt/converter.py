"""Convert index-based event graphs into ID-based CRDT operations.

Traditional CRDT libraries consume operations that reference character ids
rather than indexes.  To benchmark them against an index-based editing trace
(and to cross-check Eg-walker against an independent CRDT implementation), the
trace must first be converted, which is what the paper's ``crdt-converter``
tool does by simulating a set of collaborating peers (Appendix A.5).

:func:`event_graph_to_crdt_ops` performs that conversion: it replays the
**run-event** graph once (full replay, no state clearing) and expands every
run into per-character CRDT operations — for an insert run, the first
character takes the run record's origins and each later character chains onto
the previous one; for a delete run, the internal state reports the id spans
it removed and each deleted character yields one targeted delete op.  The
resulting operation list can be fed to :class:`repro.crdt.SimpleListCRDT`
replicas — in any causal order — and to the Automerge-like / Yjs-like
baselines.

The conversion itself is not part of any timed benchmark (the paper likewise
performs it offline in experiment E1).
"""

from __future__ import annotations

from ..core.causal_graph import CausalGraph
from ..core.event_graph import EventGraph
from ..core.ids import EventId
from ..core.internal_state import InternalState
from ..core.order_statistic_tree import TreeSequence
from ..core.records import OriginRef
from ..core.topo_sort import sort_branch_aware
from .list_crdt import CrdtDeleteOp, CrdtInsertOp, CrdtOp

__all__ = ["event_graph_to_crdt_ops"]


def _origin_id(ref: OriginRef) -> EventId | None:
    """Map an internal-state origin reference to a character id (or None)."""
    if ref is None:
        return None
    if isinstance(ref, EventId):
        return ref
    raise TypeError(
        "unexpected placeholder origin during conversion; the converter always "
        "replays the full graph so placeholders cannot occur"
    )


def event_graph_to_crdt_ops(graph: EventGraph) -> list[CrdtOp]:
    """Convert every character of ``graph`` into an ID-based CRDT operation.

    The returned list is in a topologically sorted order, so applying it
    sequentially to a single replica is always possible; causal-order
    permutations of it are exercised by the tests.
    """
    causal = CausalGraph(graph)
    # Span re-merging is disabled: each event's record (with that event's own
    # origins) is read back right after applying it, and a merge would replace
    # those origins with the absorbing run's.
    state = InternalState(TreeSequence(0), merge_spans=False)
    order = sort_branch_aware(graph, range(len(graph)))

    ops: list[CrdtOp] = []
    prepare_version: tuple[int, ...] = ()
    for idx in order:
        event = graph[idx]
        op = event.op
        if prepare_version != event.parents:
            only_prepare, only_target = causal.diff(prepare_version, event.parents)
            for other in reversed(only_prepare):
                other_op = graph[other].op
                state.retreat(graph.id_of(other), other_op.is_insert, other_op.length)
            for other in only_target:
                other_op = graph[other].op
                state.advance(graph.id_of(other), other_op.is_insert, other_op.length)
        if op.is_insert:
            state.apply_insert(event.id, op.pos, op.length)
            record = state.record_for(event.id)
            origin_left = _origin_id(record.origin_left)
            origin_right = _origin_id(record.origin_right)
            for offset in range(op.length):
                ops.append(
                    CrdtInsertOp(
                        id=event.id_at(offset),
                        origin_left=origin_left if offset == 0 else event.id_at(offset - 1),
                        origin_right=origin_right,
                        content=op.content[offset],
                    )
                )
        else:
            segments = state.apply_delete(event.id, op.pos, op.length)
            offset = 0
            for segment in segments:
                for k in range(segment.length):
                    ops.append(
                        CrdtDeleteOp(
                            id=event.id_at(offset + k),
                            target=segment.target.advance(k),
                        )
                    )
                offset += segment.length
        prepare_version = (idx,)
    return ops
