"""Convert index-based event graphs into ID-based CRDT operations.

Traditional CRDT libraries consume operations that reference character ids
rather than indexes.  To benchmark them against an index-based editing trace
(and to cross-check Eg-walker against an independent CRDT implementation), the
trace must first be converted, which is what the paper's ``crdt-converter``
tool does by simulating a set of collaborating peers (Appendix A.5).

:func:`event_graph_to_crdt_ops` performs that conversion: it replays the event
graph once (full replay, no state clearing) and records, for every insertion,
the origin ids the internal state assigned to it, and for every deletion the
id of the character it removed.  The resulting operation list can be fed to
:class:`repro.crdt.SimpleListCRDT` replicas — in any causal order — and to the
Automerge-like / Yjs-like baselines.

The conversion itself is not part of any timed benchmark (the paper likewise
performs it offline in experiment E1).
"""

from __future__ import annotations

from ..core.causal_graph import CausalGraph
from ..core.event_graph import EventGraph
from ..core.internal_state import InternalState
from ..core.order_statistic_tree import TreeSequence
from ..core.records import CrdtRecord
from ..core.topo_sort import sort_branch_aware
from .list_crdt import CrdtDeleteOp, CrdtInsertOp, CrdtOp

__all__ = ["event_graph_to_crdt_ops"]


def _origin_id(ref) -> object:
    """Map an internal-state origin reference to an event id (or None)."""
    if ref is None:
        return None
    if isinstance(ref, CrdtRecord):
        return ref.id
    raise TypeError(
        "unexpected placeholder origin during conversion; the converter always "
        "replays the full graph so placeholders cannot occur"
    )


def event_graph_to_crdt_ops(graph: EventGraph) -> list[CrdtOp]:
    """Convert every event of ``graph`` into an ID-based CRDT operation.

    The returned list is in a topologically sorted order, so applying it
    sequentially to a single replica is always possible; causal-order
    permutations of it are exercised by the tests.
    """
    causal = CausalGraph(graph)
    state = InternalState(TreeSequence(0))
    order = sort_branch_aware(graph, range(len(graph)))

    ops: list[CrdtOp] = []
    prepare_version: tuple[int, ...] = ()
    for idx in order:
        event = graph[idx]
        if prepare_version != event.parents:
            only_prepare, only_target = causal.diff(prepare_version, event.parents)
            for other in reversed(only_prepare):
                state.retreat(graph.id_of(other), graph[other].op.is_insert)
            for other in only_target:
                state.advance(graph.id_of(other), graph[other].op.is_insert)
        if event.op.is_insert:
            state.apply_insert(event.id, event.op.pos)
            record = state.id_map[event.id]
            ops.append(
                CrdtInsertOp(
                    id=event.id,
                    origin_left=_origin_id(record.origin_left),
                    origin_right=_origin_id(record.origin_right),
                    content=event.op.content,
                )
            )
        else:
            state.apply_delete(event.id, event.op.pos)
            target = state.id_map[event.id]
            ops.append(CrdtDeleteOp(id=event.id, target=target.id))
        prepare_version = (idx,)
    return ops
