"""A Yjs-like CRDT baseline.

Yjs keeps the per-character CRDT structure (ids and origins, including
tombstones) but, unlike Automerge, it does not store the editing history: the
content of deleted characters and the happened-before relationship between
operations are dropped from the document file.  Loading still requires
rebuilding the whole per-character structure in memory before the document can
be edited, which is what makes CRDT loads slow compared to Eg-walker's cached
text snapshot.

``save`` therefore writes one row per character — client, clock, origins, a
deleted flag — with content only for characters that are still visible (the
format whose size Figure 12 compares against the pruned Eg-walker encoding),
and ``load`` parses those rows and reconstructs the item list, id index and
text.

Like the Automerge stand-in, this is behaviourally faithful rather than
byte-compatible with the real library; DESIGN.md §2 records the substitution.
"""

from __future__ import annotations

from ..core.ids import EventId
from ..storage.varint import ByteReader, ByteWriter
from .ref_crdt import RefCRDTDocument, _StoredItem

__all__ = ["YjsLikeDocument"]

_MAGIC = b"YJLK"


class YjsLikeDocument(RefCRDTDocument):
    """Tombstone-keeping, history-dropping CRDT document in the style of Yjs."""

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self) -> bytes:
        writer = ByteWriter()
        writer.write_bytes(_MAGIC)
        clients: list[str] = []
        client_index: dict[str, int] = {}
        for item in self.items:
            if item.agent not in client_index:
                client_index[item.agent] = len(clients)
                clients.append(item.agent)
            for origin in (item.origin_left, item.origin_right):
                if origin is not None and origin.agent not in client_index:
                    client_index[origin.agent] = len(clients)
                    clients.append(origin.agent)
        writer.write_uvarint(len(clients))
        for client in clients:
            writer.write_string(client)

        writer.write_uvarint(len(self.items))
        visible_parts: list[str] = []
        for item in self.items:
            writer.write_uvarint(client_index[item.agent])
            writer.write_uvarint(item.seq)
            self._write_origin(writer, client_index, item.origin_left)
            self._write_origin(writer, client_index, item.origin_right)
            writer.write_uvarint(1 if item.deleted else 0)
            if not item.deleted:
                visible_parts.append(item.content)
        writer.write_string("".join(visible_parts))
        return writer.getvalue()

    @staticmethod
    def _write_origin(
        writer: ByteWriter, client_index: dict[str, int], origin: EventId | None
    ) -> None:
        if origin is None:
            writer.write_uvarint(0)
            return
        writer.write_uvarint(1)
        writer.write_uvarint(client_index[origin.agent])
        writer.write_uvarint(origin.seq)

    @classmethod
    def load(cls, data: bytes) -> "YjsLikeDocument":
        """Rebuild the item list, id index and document text from disk bytes."""
        reader = ByteReader(data)
        if reader.read_bytes(4) != _MAGIC:
            raise ValueError("not a Yjs-like document file")
        client_count = reader.read_uvarint()
        clients = [reader.read_string() for _ in range(client_count)]
        count = reader.read_uvarint()
        rows: list[tuple[str, int, EventId | None, EventId | None, bool]] = []
        for _ in range(count):
            client = clients[reader.read_uvarint()]
            clock = reader.read_uvarint()
            origin_left = cls._read_origin(reader, clients)
            origin_right = cls._read_origin(reader, clients)
            deleted = bool(reader.read_uvarint())
            rows.append((client, clock, origin_left, origin_right, deleted))
        visible_content = reader.read_string()

        doc = cls()
        items: list[_StoredItem] = []
        content_iter = iter(visible_content)
        text_parts: list[str] = []
        for client, clock, origin_left, origin_right, deleted in rows:
            content = "" if deleted else next(content_iter, "")
            item = _StoredItem(
                agent=client,
                seq=clock,
                origin_left=origin_left,
                origin_right=origin_right,
                content=content,
                deleted=deleted,
            )
            items.append(item)
            if not deleted:
                text_parts.append(content)
        doc.items = items
        doc.by_id = {EventId(i.agent, i.seq): i for i in items}
        doc.text = "".join(text_parts)
        return doc

    @staticmethod
    def _read_origin(reader: ByteReader, clients: list[str]) -> EventId | None:
        if not reader.read_uvarint():
            return None
        client = clients[reader.read_uvarint()]
        clock = reader.read_uvarint()
        return EventId(client, clock)
