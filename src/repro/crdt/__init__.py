"""CRDT substrates and baselines: the list CRDT, converter, and persistent CRDT documents."""

from .automerge_like import AutomergeLikeDocument
from .converter import event_graph_to_crdt_ops
from .list_crdt import CrdtDeleteOp, CrdtInsertOp, CrdtItem, CrdtOp, SimpleListCRDT
from .ref_crdt import RefCRDTDocument
from .yjs_like import YjsLikeDocument

__all__ = [
    "AutomergeLikeDocument",
    "CrdtDeleteOp",
    "CrdtInsertOp",
    "CrdtItem",
    "CrdtOp",
    "RefCRDTDocument",
    "SimpleListCRDT",
    "YjsLikeDocument",
    "event_graph_to_crdt_ops",
]
