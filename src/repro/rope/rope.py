"""A chunked rope: the document-state text buffer (paper §3, "document state").

Eg-walker's steady state holds nothing but the document text.  The paper notes
that in memory the text "may be represented as a rope, piece table, or similar
structure to support efficient insertions and deletions".  This module
provides :class:`Rope`, a chunked sequence of small strings with an index of
cumulative lengths, giving O(√n)-ish edits with very small constants in pure
Python (string slicing inside a chunk is a fast C operation).

The structure is deliberately simple rather than a full balanced rope: the
benchmark traces top out at a few hundred kilobytes of text, where chunk
scanning is already far from the bottleneck.  A :class:`GapBuffer` variant is
also provided for comparison and for the text-buffer micro-benchmarks.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Rope", "GapBuffer"]

#: Target chunk size in characters.  Chunks split at twice this size.
CHUNK_SIZE = 2048


class Rope:
    """A mutable character sequence with efficient mid-string edits."""

    def __init__(self, text: str = "") -> None:
        self._chunks: list[str] = []
        self._length = 0
        if text:
            self._chunks = [
                text[i : i + CHUNK_SIZE] for i in range(0, len(text), CHUNK_SIZE)
            ]
            self._length = len(text)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __str__(self) -> str:
        return "".join(self._chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = str(self)
        if len(preview) > 40:
            preview = preview[:37] + "..."
        return f"Rope({preview!r}, len={self._length})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Rope):
            return str(self) == str(other)
        if isinstance(other, str):
            return str(self) == other
        return NotImplemented

    def __iter__(self) -> Iterator[str]:
        for chunk in self._chunks:
            yield from chunk

    # ------------------------------------------------------------------
    def _locate(self, pos: int) -> tuple[int, int]:
        """Return ``(chunk_index, offset)`` for character position ``pos``.

        ``pos == len(self)`` locates the end of the final chunk so that
        appends work naturally.
        """
        if pos < 0 or pos > self._length:
            raise IndexError(f"position {pos} out of range (length {self._length})")
        remaining = pos
        for i, chunk in enumerate(self._chunks):
            if remaining <= len(chunk):
                # Prefer placing the cursor inside this chunk (including its
                # end) so insertions extend an existing chunk when possible.
                if remaining < len(chunk) or i == len(self._chunks) - 1:
                    return i, remaining
            remaining -= len(chunk)
        return len(self._chunks), 0

    def insert(self, pos: int, text: str) -> None:
        """Insert ``text`` before position ``pos``."""
        if not text:
            return
        if not self._chunks:
            self._chunks = [text]
            self._length = len(text)
            self._normalise(0)
            return
        idx, offset = self._locate(pos)
        if idx == len(self._chunks):
            self._chunks.append(text)
        else:
            chunk = self._chunks[idx]
            self._chunks[idx] = chunk[:offset] + text + chunk[offset:]
        self._length += len(text)
        self._normalise(idx)

    def delete(self, pos: int, length: int = 1) -> str:
        """Delete ``length`` characters starting at ``pos``; returns them."""
        if length <= 0:
            return ""
        if pos < 0 or pos + length > self._length:
            raise IndexError(
                f"delete of {length} at {pos} out of range (length {self._length})"
            )
        removed: list[str] = []
        remaining = length
        idx, offset = self._locate(pos)
        while remaining > 0:
            chunk = self._chunks[idx]
            take = min(remaining, len(chunk) - offset)
            removed.append(chunk[offset : offset + take])
            self._chunks[idx] = chunk[:offset] + chunk[offset + take :]
            remaining -= take
            if not self._chunks[idx]:
                del self._chunks[idx]
            else:
                idx += 1
            offset = 0
        self._length -= length
        return "".join(removed)

    def char_at(self, pos: int) -> str:
        """The character at ``pos``."""
        if pos < 0 or pos >= self._length:
            raise IndexError(f"position {pos} out of range (length {self._length})")
        remaining = pos
        for chunk in self._chunks:
            if remaining < len(chunk):
                return chunk[remaining]
            remaining -= len(chunk)
        raise IndexError(pos)  # pragma: no cover - unreachable

    def slice(self, start: int, end: int) -> str:
        """The substring ``[start, end)``."""
        if start < 0 or end > self._length or start > end:
            raise IndexError(f"slice [{start}, {end}) out of range (length {self._length})")
        out: list[str] = []
        remaining_skip = start
        remaining_take = end - start
        for chunk in self._chunks:
            if remaining_take == 0:
                break
            if remaining_skip >= len(chunk):
                remaining_skip -= len(chunk)
                continue
            take = min(remaining_take, len(chunk) - remaining_skip)
            out.append(chunk[remaining_skip : remaining_skip + take])
            remaining_skip = 0
            remaining_take -= take
        return "".join(out)

    def chunk_count(self) -> int:
        """Number of chunks currently held (used by memory accounting)."""
        return len(self._chunks)

    # ------------------------------------------------------------------
    def _normalise(self, idx: int) -> None:
        """Split the chunk at ``idx`` if it has grown too large."""
        if idx >= len(self._chunks):
            return
        chunk = self._chunks[idx]
        if len(chunk) <= 2 * CHUNK_SIZE:
            return
        pieces = [chunk[i : i + CHUNK_SIZE] for i in range(0, len(chunk), CHUNK_SIZE)]
        self._chunks[idx : idx + 1] = pieces


class GapBuffer:
    """A classic gap buffer, efficient when edits cluster around a cursor."""

    def __init__(self, text: str = "") -> None:
        self._before: list[str] = list(text)
        self._after: list[str] = []

    def __len__(self) -> int:
        return len(self._before) + len(self._after)

    def __str__(self) -> str:
        return "".join(self._before) + "".join(reversed(self._after))

    def _move_gap(self, pos: int) -> None:
        if pos < 0 or pos > len(self):
            raise IndexError(f"position {pos} out of range (length {len(self)})")
        while len(self._before) > pos:
            self._after.append(self._before.pop())
        while len(self._before) < pos:
            self._before.append(self._after.pop())

    def insert(self, pos: int, text: str) -> None:
        self._move_gap(pos)
        self._before.extend(text)

    def delete(self, pos: int, length: int = 1) -> str:
        if pos + length > len(self):
            raise IndexError(
                f"delete of {length} at {pos} out of range (length {len(self)})"
            )
        self._move_gap(pos)
        removed = [self._after.pop() for _ in range(length)]
        return "".join(removed)

    def char_at(self, pos: int) -> str:
        if pos < len(self._before):
            return self._before[pos]
        idx = len(self) - 1 - pos
        if idx < 0 or idx >= len(self._after):
            raise IndexError(f"position {pos} out of range (length {len(self)})")
        return self._after[idx]
