"""Text-buffer substrate: rope and gap buffer document representations."""

from .rope import GapBuffer, Rope

__all__ = ["Rope", "GapBuffer"]
