"""Reliable causal broadcast (paper §2.1–2.2).

Eg-walker assumes a replication layer that delivers every event to every
replica, with each event delivered only after all of its parents.  This module
implements that layer for the simulated network: a :class:`CausalBuffer` holds
incoming events whose parents have not arrived yet and releases them (in
causal order) as soon as they become deliverable, which is exactly the "simple
causal broadcast protocol" the paper describes.

Because run boundaries are a local encoding detail, the buffer reasons about
**character id spans**, not whole-event ids: a parent reference names one
character (the last one the event depends on), an event covers the span of
characters its run carries, and peers may carve the same characters into
different runs.  Known ids are therefore tracked per agent in a
:class:`~repro.core.range_map.SpanSet` — O(runs) memory, any carving.

The buffer is transport-agnostic: the in-process network simulator, the relay
server and the gossip topology in :mod:`repro.network.simulator` all push
events through it.

Deliveries can be **batched**: constructed with a ``deliver_batch`` callback,
the buffer hands everything a top-level call makes deliverable — a whole
network tick's messages plus any unblocking cascades — to the consumer in one
causally ordered list.  A replica's merge engine integrates such a list as a
single merge, so a relay hub fanning in one event per peer per tick pays one
``integrate`` per batch instead of one per event.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.ids import EventId
from ..core.oplog import RemoteEvent
from ..core.range_map import SpanSet

__all__ = ["CausalBuffer", "DeliveryStats"]


@dataclass(slots=True)
class DeliveryStats:
    """Counters describing the buffer's behaviour (exposed for tests/examples)."""

    received: int = 0
    delivered: int = 0
    duplicates: int = 0
    buffered_high_water: int = 0
    #: Delivery batches handed to ``deliver_batch`` (stays 0 with a per-event
    #: ``deliver`` callback).  ``delivered / batches`` is the fan-in
    #: amortisation a batching consumer (the merge engine) enjoys.
    batches: int = 0


class CausalBuffer:
    """Re-orders incoming events so that parents are delivered before children.

    Args:
        deliver: per-event delivery callback (the original interface).
        deliver_batch: batch delivery callback.  When given it *replaces*
            ``deliver``: every top-level call into the buffer
            (:meth:`receive`, :meth:`receive_batch`,
            :meth:`mark_known_spans`) hands **all** events it makes
            deliverable — including whole unblocking cascades — to
            ``deliver_batch`` in one causally ordered list.  A consumer that
            pays per integration (the merge engine costs one merge per
            batch) therefore pays once per network tick, not once per event:
            the relay-hub fan-in amortisation.

    Exactly one of the two callbacks must be provided.
    """

    def __init__(
        self,
        deliver: Callable[[RemoteEvent], None] | None = None,
        *,
        deliver_batch: Callable[[list[RemoteEvent]], None] | None = None,
    ) -> None:
        if (deliver is None) == (deliver_batch is None):
            raise ValueError("provide exactly one of deliver / deliver_batch")
        self._deliver = deliver
        self._deliver_batch = deliver_batch
        #: Per-agent coverage of character ids already delivered (or locally
        #: generated).  Span-based so that re-carved runs dedup correctly.
        self._known: dict[str, SpanSet] = {}
        self._pending: dict[EventId, RemoteEvent] = {}
        self._waiting_on: dict[EventId, list[EventId]] = {}
        #: Sorted waiting-parent seqs per agent, so a delivered run can find
        #: every waiter inside its span with a bisect instead of a char loop.
        self._waiting_seqs: dict[str, list[int]] = {}
        self.stats = DeliveryStats()

    # ------------------------------------------------------------------
    def _known_spans(self, agent: str) -> SpanSet:
        spans = self._known.get(agent)
        if spans is None:
            spans = self._known[agent] = SpanSet()
        return spans

    def mark_known(self, event_ids: Iterable[EventId]) -> int:
        """Tell the buffer about single-character ids the replica already has.

        Forwards to :meth:`mark_known_spans`, so buffered events that only
        waited on the marked ids are flushed (previously they stayed parked
        until some unrelated delivery touched the same span); returns how
        many got delivered.
        """
        return self.mark_known_spans((event_id, 1) for event_id in event_ids)

    def mark_known_spans(self, spans: Iterable[tuple[EventId, int]]) -> int:
        """Tell the buffer about known id runs (locally generated events, or
        events ingested out of band, e.g. a state-transfer sync).

        Buffered events that only waited on the marked spans become
        deliverable and are flushed (as a single batch in batching mode);
        returns how many got delivered.
        """
        ready: list[RemoteEvent] = []
        for start_id, length in spans:
            self._known_spans(start_id.agent).add(start_id.seq, length)
            ready.extend(self._collect_ready(start_id.agent, start_id.seq, length))
        batch: list[RemoteEvent] = []
        for event in ready:
            batch.extend(self._collect_cascade(event))
        return self._dispatch(batch)

    def _knows(self, event_id: EventId) -> bool:
        spans = self._known.get(event_id.agent)
        return spans is not None and spans.contains(event_id.seq)

    def _covers(self, event: RemoteEvent) -> bool:
        spans = self._known.get(event.id.agent)
        return spans is not None and spans.covers(event.id.seq, event.op.length)

    def receive(self, event: RemoteEvent) -> int:
        """Accept one event from the network; returns how many got delivered.

        An event whose characters are all known is a duplicate regardless of
        how its sender carved the run; a partially known run is *not* — it is
        passed through and the event graph's split-on-ingest keeps only the
        new characters.  Everything the event makes deliverable (itself plus
        any unblocked cascade) goes out as one batch in batching mode.
        """
        return self._dispatch(self._receive_collect(event))

    def _receive_collect(self, event: RemoteEvent) -> list[RemoteEvent]:
        """The receive logic, returning deliverable events instead of
        dispatching them (so :meth:`receive_batch` can flush once)."""
        self.stats.received += 1
        pending = self._pending.get(event.id)
        if self._covers(event) or (
            pending is not None and pending.op.length >= event.op.length
        ):
            self.stats.duplicates += 1
            return []
        missing = [p for p in event.parents if not self._knows(p)]
        if not missing and pending is not None:
            # A deliverable coarser carving supersedes the buffered finer
            # one: drop the stale entry now, or it lingers as a phantom
            # pending event (a leak) until some parent span is re-touched.
            del self._pending[event.id]
        if missing:
            if pending is not None:
                # A coarser carving of an already-buffered run (same first
                # character, so the same original edit and the same parents):
                # keep the longer event; the existing waiter registrations
                # still apply.
                self._pending[event.id] = event
                return []
            self._pending[event.id] = event
            for parent in missing:
                waiters = self._waiting_on.setdefault(parent, [])
                if not waiters:
                    bisect.insort(
                        self._waiting_seqs.setdefault(parent.agent, []), parent.seq
                    )
                waiters.append(event.id)
            if len(self._pending) > self.stats.buffered_high_water:
                self.stats.buffered_high_water = len(self._pending)
            return []
        return self._collect_cascade(event)

    def receive_batch(self, events: Iterable[RemoteEvent]) -> int:
        """Accept several events at once (e.g. everything a network tick
        delivered); returns how many got delivered.

        In batching mode everything the whole batch makes deliverable reaches
        ``deliver_batch`` as **one** call — this is the per-tick amortisation
        a relay hub's fan-in relies on (one merge-engine integration per
        batch, not per event).
        """
        batch: list[RemoteEvent] = []
        for event in events:
            batch.extend(self._receive_collect(event))
        return self._dispatch(batch)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def _waiters_in_span(self, agent: str, start: int, length: int) -> list[EventId]:
        """Pop every waiting parent id inside ``agent``'s span ``start..+length``."""
        seqs = self._waiting_seqs.get(agent)
        if not seqs:
            return []
        lo = bisect.bisect_left(seqs, start)
        hi = bisect.bisect_left(seqs, start + length)
        hits = [EventId(agent, seq) for seq in seqs[lo:hi]]
        del seqs[lo:hi]
        return hits

    def _collect_ready(self, agent: str, start: int, length: int) -> list[RemoteEvent]:
        """Pending events made deliverable by ``agent``'s span becoming known."""
        ready: list[RemoteEvent] = []
        for parent in self._waiters_in_span(agent, start, length):
            for waiting_id in self._waiting_on.pop(parent, []):
                waiting = self._pending.get(waiting_id)
                if waiting is None:
                    continue
                if all(self._knows(p) for p in waiting.parents):
                    del self._pending[waiting_id]
                    ready.append(waiting)
        return ready

    def _collect_cascade(self, event: RemoteEvent) -> list[RemoteEvent]:
        """Mark ``event`` and everything it unblocks delivered; return them
        in causal order (the dispatch to the consumer happens at the
        top-level entry point, once per call)."""
        out: list[RemoteEvent] = []
        queue = [event]
        while queue:
            current = queue.pop()
            if self._covers(current):
                continue
            out.append(current)
            self._known_spans(current.id.agent).add(current.id.seq, current.op.length)
            self.stats.delivered += 1
            queue.extend(
                self._collect_ready(current.id.agent, current.id.seq, current.op.length)
            )
        return out

    def _dispatch(self, events: list[RemoteEvent]) -> int:
        """Hand delivered events to the consumer: one ``deliver_batch`` call
        in batching mode, per-event ``deliver`` calls otherwise."""
        if not events:
            return 0
        if self._deliver_batch is not None:
            self.stats.batches += 1
            self._deliver_batch(events)
        else:
            for event in events:
                self._deliver(event)
        return len(events)
