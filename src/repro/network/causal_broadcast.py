"""Reliable causal broadcast (paper §2.1–2.2).

Eg-walker assumes a replication layer that delivers every event to every
replica, with each event delivered only after all of its parents.  This module
implements that layer for the simulated network: a :class:`CausalBuffer` holds
incoming events whose parents have not arrived yet and releases them (in
causal order) as soon as they become deliverable, which is exactly the "simple
causal broadcast protocol" the paper describes.

The buffer is transport-agnostic: the in-process network simulator, the relay
server and the gossip topology in :mod:`repro.network.simulator` all push
events through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.ids import EventId
from ..core.oplog import RemoteEvent

__all__ = ["CausalBuffer", "DeliveryStats"]


@dataclass(slots=True)
class DeliveryStats:
    """Counters describing the buffer's behaviour (exposed for tests/examples)."""

    received: int = 0
    delivered: int = 0
    duplicates: int = 0
    buffered_high_water: int = 0


class CausalBuffer:
    """Re-orders incoming events so that parents are delivered before children."""

    def __init__(self, deliver: Callable[[RemoteEvent], None]) -> None:
        self._deliver = deliver
        self._known: set[EventId] = set()
        self._pending: dict[EventId, RemoteEvent] = {}
        self._waiting_on: dict[EventId, list[EventId]] = {}
        self.stats = DeliveryStats()

    # ------------------------------------------------------------------
    def mark_known(self, event_ids: Iterable[EventId]) -> None:
        """Tell the buffer about events the replica already has (e.g. local ones)."""
        self._known.update(event_ids)

    def receive(self, event: RemoteEvent) -> int:
        """Accept one event from the network; returns how many got delivered."""
        self.stats.received += 1
        if event.id in self._known or event.id in self._pending:
            self.stats.duplicates += 1
            return 0
        missing = [p for p in event.parents if p not in self._known]
        if missing:
            self._pending[event.id] = event
            for parent in missing:
                self._waiting_on.setdefault(parent, []).append(event.id)
            if len(self._pending) > self.stats.buffered_high_water:
                self.stats.buffered_high_water = len(self._pending)
            return 0
        return self._deliver_and_cascade(event)

    def receive_batch(self, events: Iterable[RemoteEvent]) -> int:
        delivered = 0
        for event in events:
            delivered += self.receive(event)
        return delivered

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def _deliver_and_cascade(self, event: RemoteEvent) -> int:
        """Deliver ``event`` and any buffered events it unblocks."""
        delivered = 0
        queue = [event]
        while queue:
            current = queue.pop()
            if current.id in self._known:
                continue
            self._deliver(current)
            self._known.add(current.id)
            self.stats.delivered += 1
            delivered += 1
            for waiting_id in self._waiting_on.pop(current.id, []):
                waiting = self._pending.get(waiting_id)
                if waiting is None:
                    continue
                if all(p in self._known for p in waiting.parents):
                    del self._pending[waiting_id]
                    queue.append(waiting)
        return delivered
