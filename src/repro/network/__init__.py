"""Replication substrate: causal broadcast over a simulated network."""

from .causal_broadcast import CausalBuffer, DeliveryStats
from .simulator import Message, NetworkSimulator, SimulatedReplica, full_mesh, star

__all__ = [
    "CausalBuffer",
    "DeliveryStats",
    "Message",
    "NetworkSimulator",
    "SimulatedReplica",
    "full_mesh",
    "star",
]
