"""A discrete-event network simulator for collaborative editing sessions.

The paper's system model (§2.1) only assumes a reliable broadcast protocol —
messages may be delayed arbitrarily, replicas may work offline, and the
network may be a central relay or peer-to-peer gossip.  This module simulates
those conditions so that the examples, the trace generators and the
integration tests can exercise realistic concurrency patterns:

* :class:`NetworkSimulator` keeps a virtual clock and a priority queue of
  in-flight messages; per-link latency and partitions control which messages
  are delivered when.
* :class:`SimulatedReplica` wires a :class:`~repro.core.document.Document`
  into the network through a :class:`~repro.network.causal_broadcast.CausalBuffer`.
* Topologies: :func:`full_mesh` (peer-to-peer gossip to every peer) and
  :func:`star` (a relay server that forwards events, like a typical
  centralised deployment).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from ..core.document import Document
from ..core.oplog import RemoteEvent
from ..faults import FaultInjector, FaultPlan

__all__ = [
    "Message",
    "SimulatedReplica",
    "NetworkSimulator",
    "full_mesh",
    "star",
    "live_session",
]


@dataclass(order=True)
class Message:
    """One event in flight from ``sender`` to ``recipient``."""

    deliver_at: float
    sequence: int
    sender: str = field(compare=False)
    recipient: str = field(compare=False)
    event: RemoteEvent = field(compare=False)


class SimulatedReplica:
    """A replica participating in a simulated editing session."""

    def __init__(
        self,
        name: str,
        simulator: "NetworkSimulator",
        document_options: dict | None = None,
    ) -> None:
        self.name = name
        self.simulator = simulator
        self.document = Document(name, **(document_options or {}))
        self.buffer = CausalBufferAdapter(self)
        self.online = True
        self.forward = False
        self.received_events = 0

    # -- local editing --------------------------------------------------
    def insert(self, pos: int, content: str) -> None:
        before_seq = self.document.oplog.graph.next_seq_for(self.name)
        self.document.insert(pos, content)
        self._broadcast_delta(before_seq)

    def delete(self, pos: int, length: int = 1) -> None:
        before_seq = self.document.oplog.graph.next_seq_for(self.name)
        self.document.delete(pos, length)
        self._broadcast_delta(before_seq)

    @property
    def text(self) -> str:
        return self.document.text

    # -- network --------------------------------------------------------
    def set_online(self, online: bool) -> None:
        """Going offline queues outgoing events; coming back online flushes them."""
        was_offline = not self.online
        self.online = online
        if online and was_offline:
            self.simulator.flush_offline_queue(self.name)
            self.simulator.release_held_messages(self.name)

    def _broadcast_delta(self, before_seq: int) -> None:
        # Export by id span, not by event index: with sender-side run
        # coalescing a local edit may have extended an existing event, and
        # only the new suffix should travel.
        events = self.document.oplog.export_since_seq(self.name, before_seq)
        self.buffer.mark_local(events)
        self.simulator.broadcast(self.name, events)

    def deliver(self, event: RemoteEvent) -> None:
        self.buffer.receive(event)

    def deliver_batch(self, events: list[RemoteEvent]) -> None:
        """Deliver every message one network tick produced for this replica.

        The causal buffer hands whatever becomes deliverable to the document
        as a single batch, so the merge engine pays one ``integrate`` per
        tick — the relay-hub fan-in amortisation.
        """
        self.buffer.receive_batch(events)

    def sync_direct(self, events: Iterable[RemoteEvent]) -> int:
        """Ingest a batch of events outside the broadcast flow.

        Models a state-transfer style sync (e.g. downloading a peer's event
        graph, possibly carved into different runs than the broadcast copies).
        The batch goes through the causal buffer so delivery bookkeeping stays
        consistent with the graph — later broadcast deliveries of the same
        characters dedup, and buffered events waiting on the synced spans are
        flushed.  Returns how many events were delivered to the document.
        """
        return self.buffer.receive_batch(events)


class CausalBufferAdapter:
    """Glue between the network, the causal buffer and the document.

    The buffer runs in batching mode: everything one top-level call makes
    deliverable (a tick's worth of messages, unblocking cascades, flushes
    after an out-of-band sync) reaches the document as a **single**
    ``apply_remote_events`` batch — one merge-engine integration per batch.
    """

    def __init__(self, replica: SimulatedReplica) -> None:
        from .causal_broadcast import CausalBuffer

        self.replica = replica
        self.buffer = CausalBuffer(deliver_batch=self._apply_batch)

    def mark_local(self, events: Iterable[RemoteEvent]) -> None:
        self.buffer.mark_known_spans((e.id, e.op.length) for e in events)

    def receive(self, event: RemoteEvent) -> None:
        self.buffer.receive(event)

    def receive_batch(self, events: Iterable[RemoteEvent]) -> int:
        return self.buffer.receive_batch(events)

    def _apply_batch(self, events: list[RemoteEvent]) -> None:
        self.replica.document.apply_remote_events(events)
        self.replica.received_events += len(events)

    @property
    def pending(self) -> int:
        return self.buffer.pending_count


class NetworkSimulator:
    """Virtual-time message delivery between replicas."""

    def __init__(
        self,
        default_latency: float = 0.05,
        *,
        document_options: dict | None = None,
        faults: FaultPlan | FaultInjector | None = None,
    ) -> None:
        """
        Args:
            faults: a seeded :class:`~repro.faults.FaultPlan` (or pre-built
                injector).  Every enqueued message consults it: scheduled
                :class:`~repro.faults.PartitionWindow`\\ s (in virtual time)
                and probabilistic drops discard the message, duplicates
                enqueue it twice, delays/reorders stretch its latency.
                Dropped traffic is repaired by :meth:`anti_entropy`.
        """
        self.default_latency = default_latency
        self.faults = faults.injector() if isinstance(faults, FaultPlan) else faults
        self.document_options = dict(document_options or {})
        self.replicas: dict[str, SimulatedReplica] = {}
        self.links: dict[tuple[str, str], float] = {}
        self.partitioned: set[tuple[str, str]] = set()
        self.now = 0.0
        self._queue: list[Message] = []
        self._offline_queues: dict[str, list[RemoteEvent]] = {}
        self._held_for_offline: dict[str, list[Message]] = {}
        self._sequence = itertools.count()
        self.messages_sent = 0
        self.messages_delivered = 0

    # -- topology --------------------------------------------------------
    def add_replica(self, name: str) -> SimulatedReplica:
        if name in self.replicas:
            raise ValueError(f"duplicate replica name {name!r}")
        replica = SimulatedReplica(name, self, self.document_options)
        self.replicas[name] = replica
        self._offline_queues[name] = []
        self._held_for_offline[name] = []
        return replica

    def connect(self, a: str, b: str, latency: float | None = None) -> None:
        lat = self.default_latency if latency is None else latency
        self.links[(a, b)] = lat
        self.links[(b, a)] = lat

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two replicas (messages are dropped and resent on heal)."""
        self.partitioned.add((a, b))
        self.partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self.partitioned.discard((a, b))
        self.partitioned.discard((b, a))
        # Reliable broadcast: resend everything the other side might have missed.
        for x, y in ((a, b), (b, a)):
            self._resync_pair(x, y)

    def _resync_pair(self, sender_name: str, recipient_name: str) -> None:
        """Re-send everything ``recipient`` is missing relative to ``sender``
        (computed from document versions, so it repairs any kind of loss)."""
        sender = self.replicas[sender_name]
        recipient = self.replicas[recipient_name]
        missing = sender.document.events_since(recipient.document.version())
        for event in missing:
            self._enqueue(sender_name, recipient_name, event)

    def anti_entropy(self) -> None:
        """One repair round: every linked pair resyncs missing events.

        This is the reliable-broadcast guarantee for *injected* loss (fault
        plans drop messages without the bookkeeping :meth:`partition` keeps):
        whatever was dropped is re-derived from document state and resent.
        Repair traffic goes through :meth:`_enqueue` and is therefore itself
        subject to fault injection — run repeated rounds (each advances the
        schedule deterministically) until the session converges.
        """
        for a, b in list(self.links.keys()):
            self._resync_pair(a, b)

    # -- message flow -----------------------------------------------------
    def broadcast(self, sender: str, events: Iterable[RemoteEvent]) -> None:
        sender_replica = self.replicas[sender]
        for event in events:
            self.messages_sent += 1
            if not sender_replica.online:
                self._offline_queues[sender].append(event)
                continue
            for (a, b), _ in list(self.links.items()):
                if a != sender:
                    continue
                self._enqueue(a, b, event)

    def flush_offline_queue(self, sender: str) -> None:
        queued = self._offline_queues[sender]
        self._offline_queues[sender] = []
        self.broadcast(sender, queued)

    def release_held_messages(self, recipient: str) -> None:
        """Re-deliver messages that arrived while ``recipient`` was offline."""
        held = self._held_for_offline[recipient]
        self._held_for_offline[recipient] = []
        for message in held:
            self._enqueue(message.sender, message.recipient, message.event)

    def _enqueue(self, sender: str, recipient: str, event: RemoteEvent) -> None:
        if (sender, recipient) in self.partitioned:
            return
        latency = self.links.get((sender, recipient), self.default_latency)
        copies = 1
        if self.faults is not None:
            fate = self.faults.message_fate(sender, recipient, self.now)
            if fate.dropped:
                return
            copies = fate.copies
            latency += fate.extra_delay
        for _ in range(copies):
            heapq.heappush(
                self._queue,
                Message(
                    deliver_at=self.now + latency,
                    sequence=next(self._sequence),
                    sender=sender,
                    recipient=recipient,
                    event=event,
                ),
            )

    # -- time -------------------------------------------------------------
    def advance(self, duration: float) -> int:
        """Advance virtual time, delivering every message that comes due.

        Messages due within this tick are grouped **per recipient** and
        handed over as one batch each (:meth:`SimulatedReplica.deliver_batch`),
        so a replica that many peers — or a forwarding hub — send to in the
        same window integrates the whole tick in one merge instead of one
        merge per message.  Store-and-forward relaying still happens per
        message at pop time (it only re-enqueues, never touches documents).
        """
        deadline = self.now + duration
        delivered = 0
        #: Per-recipient batches in arrival order (dict preserves insertion
        #: order, and messages pop in deliver_at order, so each batch is
        #: causally safe for the buffer).
        batches: dict[str, list[RemoteEvent]] = {}
        while self._queue and self._queue[0].deliver_at <= deadline:
            message = heapq.heappop(self._queue)
            self.now = message.deliver_at
            recipient = self.replicas[message.recipient]
            if not recipient.online:
                # Reliable delivery: hold the message until the recipient is back.
                self._held_for_offline[message.recipient].append(message)
                continue
            batches.setdefault(message.recipient, []).append(message.event)
            self.messages_delivered += 1
            delivered += 1
            if recipient.forward:
                # Store-and-forward relay: pass the event on to every other
                # peer this node is connected to.
                for (a, b) in list(self.links.keys()):
                    if a == message.recipient and b != message.sender:
                        self._enqueue(a, b, message.event)
        for name, events in batches.items():
            self.replicas[name].deliver_batch(events)
        self.now = deadline
        return delivered

    def run_until_quiescent(self, max_rounds: int = 10_000) -> None:
        """Keep advancing time until no messages remain in flight."""
        rounds = 0
        while self._queue:
            self.advance(self.default_latency * 2)
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("network failed to quiesce (partition still active?)")

    def all_texts(self) -> dict[str, str]:
        return {name: replica.text for name, replica in self.replicas.items()}

    def converged(self) -> bool:
        texts = set(self.all_texts().values())
        return len(texts) <= 1


def full_mesh(
    names: Iterable[str],
    latency: float = 0.05,
    *,
    document_options: dict | None = None,
    faults: "FaultPlan | FaultInjector | None" = None,
) -> NetworkSimulator:
    """A peer-to-peer topology: every replica talks to every other replica."""
    simulator = NetworkSimulator(
        default_latency=latency, document_options=document_options, faults=faults
    )
    names = list(names)
    for name in names:
        simulator.add_replica(name)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            simulator.connect(a, b, latency)
    return simulator


def star(
    hub: str,
    leaves: Iterable[str],
    latency: float = 0.05,
    *,
    document_options: dict | None = None,
) -> NetworkSimulator:
    """A relay-server topology: all traffic flows through ``hub``.

    The hub is itself a replica (a store-and-forward server holding the event
    graph); leaves only exchange events with the hub, which re-broadcasts them.
    """
    simulator = NetworkSimulator(default_latency=latency, document_options=document_options)
    hub_replica = simulator.add_replica(hub)
    hub_replica.forward = True
    for leaf in leaves:
        simulator.add_replica(leaf)
        simulator.connect(hub, leaf, latency)
    return simulator


def live_session(
    names: Iterable[str],
    *,
    rounds: int = 60,
    seed: int = 0,
    latency: float = 0.02,
    concurrency: float = 0.25,
    document_options: dict | None = None,
) -> NetworkSimulator:
    """Drive a realistic *live* editing session and return the quiesced network.

    Models the steady state the merge engine exists for: most of the time one
    author types while the others watch (their replicas take the sequential
    fast path on every delivery), and with probability ``concurrency`` two
    authors type in the same latency window, creating a short concurrent
    episode that resolves within a round.  Used by the live-merge benchmark
    and the engine tests; deterministic given ``seed``.
    """
    import random

    rng = random.Random(seed)
    names = list(names)
    sim = full_mesh(names, latency=latency, document_options=document_options)
    words = ["alpha ", "beta ", "gamma ", "delta ", "epsilon ", "zeta "]
    for _ in range(rounds):
        editors = [rng.choice(names)]
        if len(names) > 1 and rng.random() < concurrency:
            editors.append(rng.choice([n for n in names if n != editors[0]]))
        for name in editors:
            replica = sim.replicas[name]
            text_len = len(replica.text)
            if text_len > 30 and rng.random() < 0.2:
                pos = rng.randrange(text_len - 4)
                replica.delete(pos, rng.randint(1, 4))
            else:
                word = rng.choice(words)
                replica.insert(rng.randint(0, text_len), word)
        sim.advance(latency * 4)
    sim.run_until_quiescent()
    return sim
