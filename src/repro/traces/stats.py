"""Trace statistics — the quantities reported in Table 1 of the paper.

For every trace the paper reports: number of events, average concurrency,
number of graph runs, number of authors, the percentage of inserted characters
that survive to the final document, and the final document size.  This module
computes the same statistics from an event graph so that the Table 1 benchmark
can print the reproduction's row next to the paper's row.

Definitions used here (the paper does not give formal definitions):

* **Average concurrency** — the mean, over events, of the number of other
  branch heads that are concurrent with the event at the moment it was added,
  i.e. ``len(frontier) - 1`` after adding the event, averaged over all events.
  Sequential traces score 0; a session with two users typing simultaneously
  scores a bit under 1; a history with seven live branches scores around 6.
* **Graph runs** — the number of maximal linear runs: an event starts a new
  run iff its parents are not exactly the previous event, or the previous
  event has more than one child.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.event_graph import EventGraph
from .trace import Trace

__all__ = ["TraceStats", "compute_stats"]


@dataclass(slots=True)
class TraceStats:
    """One row of Table 1.

    ``events``, ``inserts`` and ``deletes`` count *characters* (the paper's
    per-keystroke events), so they are invariant under run-length encoding;
    ``run_events`` counts the run events the graph actually stores — the
    ratio between the two is the RLE win.
    """

    name: str
    kind: str
    events: int
    run_events: int
    inserts: int
    deletes: int
    average_concurrency: float
    graph_runs: int
    authors: int
    chars_remaining_percent: float
    final_size_bytes: int

    def as_row(self) -> dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "events_k": round(self.events / 1000, 1),
            "run_events": self.run_events,
            "avg_concurrency": round(self.average_concurrency, 2),
            "graph_runs": self.graph_runs,
            "authors": self.authors,
            "chars_remaining_pct": round(self.chars_remaining_percent, 1),
            "final_size_kb": round(self.final_size_bytes / 1000, 1),
        }


def compute_stats(trace: Trace) -> TraceStats:
    """Compute the Table 1 statistics for ``trace``."""
    graph = trace.graph
    inserts = sum(e.op.length for e in graph.events() if e.op.is_insert)
    deletes = graph.num_chars - inserts

    average_concurrency = _average_concurrency(graph)
    graph_runs = _graph_runs(graph)
    authors = len({e.id.agent for e in graph.events()})

    final_text = trace.final_text
    final_size = len(final_text.encode("utf-8"))
    chars_remaining = (len(final_text) / inserts * 100.0) if inserts else 0.0

    return TraceStats(
        name=trace.name,
        kind=trace.kind,
        events=graph.num_chars,
        run_events=len(graph),
        inserts=inserts,
        deletes=deletes,
        average_concurrency=average_concurrency,
        graph_runs=graph_runs,
        authors=authors,
        chars_remaining_percent=chars_remaining,
        final_size_bytes=final_size,
    )


def _average_concurrency(graph: EventGraph) -> float:
    """Mean number of concurrent branch heads per event (see module docstring)."""
    if len(graph) == 0:
        return 0.0
    frontier: set[int] = set()
    total = 0
    for event in graph.events():
        frontier.difference_update(event.parents)
        frontier.add(event.index)
        total += len(frontier) - 1
    return total / len(graph)


def _graph_runs(graph: EventGraph) -> int:
    """Number of maximal linear runs in the event graph."""
    if len(graph) == 0:
        return 0
    runs = 0
    for event in graph.events():
        if event.index == 0:
            runs += 1
            continue
        previous = event.index - 1
        starts_new_run = event.parents != (previous,) or len(graph.children_of(previous)) > 1
        if starts_new_run:
            runs += 1
    return runs
