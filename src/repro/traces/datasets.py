"""The benchmark trace suite: synthetic S1–S3, C1–C2, A1–A2 (paper §4.1, Table 1).

The paper's traces are recorded keystroke logs of real documents; this
reproduction generates synthetic traces with matching structure (see
DESIGN.md §2 for the substitution rationale).  Sizes are scaled down by
roughly two orders of magnitude because pure Python executes the per-event
work ~100× slower than the paper's Rust implementation; the *relative*
comparisons between algorithms — which is what every figure reports — are
preserved.

The scale can be adjusted globally with the ``REPRO_TRACE_SCALE`` environment
variable (e.g. ``REPRO_TRACE_SCALE=0.2`` for a quick run, ``2.0`` for a more
faithful but slower one).  Traces are cached per (name, scale) so repeated
benchmark fixtures don't regenerate them.
"""

from __future__ import annotations

import os
from functools import lru_cache

from .generator import generate_async, generate_concurrent, generate_sequential
from .trace import Trace

__all__ = [
    "TRACE_NAMES",
    "PAPER_TABLE1",
    "default_scale",
    "get_trace",
    "load_all_traces",
]

#: The seven benchmark traces, in the paper's order.
TRACE_NAMES = ("S1", "S2", "S3", "C1", "C2", "A1", "A2")

#: Table 1 as printed in the paper (for side-by-side reporting).
PAPER_TABLE1: dict[str, dict[str, object]] = {
    "S1": {"type": "sequential", "events_k": 779, "avg_concurrency": 0.00, "graph_runs": 1, "authors": 2, "chars_remaining_pct": 57.5, "final_size_kb": 307.2},
    "S2": {"type": "sequential", "events_k": 1105, "avg_concurrency": 0.00, "graph_runs": 1, "authors": 1, "chars_remaining_pct": 26.7, "final_size_kb": 166.3},
    "S3": {"type": "sequential", "events_k": 2339, "avg_concurrency": 0.00, "graph_runs": 1, "authors": 2, "chars_remaining_pct": 9.9, "final_size_kb": 119.5},
    "C1": {"type": "concurrent", "events_k": 652, "avg_concurrency": 0.43, "graph_runs": 92101, "authors": 2, "chars_remaining_pct": 90.1, "final_size_kb": 521.5},
    "C2": {"type": "concurrent", "events_k": 608, "avg_concurrency": 0.44, "graph_runs": 133626, "authors": 2, "chars_remaining_pct": 93.0, "final_size_kb": 516.3},
    "A1": {"type": "asynchronous", "events_k": 947, "avg_concurrency": 0.10, "graph_runs": 101, "authors": 194, "chars_remaining_pct": 7.8, "final_size_kb": 37.2},
    "A2": {"type": "asynchronous", "events_k": 698, "avg_concurrency": 6.11, "graph_runs": 2430, "authors": 299, "chars_remaining_pct": 49.6, "final_size_kb": 222.0},
}

#: Baseline number of events per trace at scale 1.0.  Chosen so that the whole
#: benchmark suite (including the deliberately quadratic OT baseline on the
#: asynchronous traces) completes in minutes on a laptop.
_BASE_EVENTS: dict[str, int] = {
    "S1": 6000,
    "S2": 8000,
    "S3": 12000,
    "C1": 5000,
    "C2": 5000,
    "A1": 6000,
    "A2": 5000,
}


def default_scale() -> float:
    """The trace scale factor, configurable via ``REPRO_TRACE_SCALE``."""
    raw = os.environ.get("REPRO_TRACE_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"invalid REPRO_TRACE_SCALE value {raw!r}") from exc
    if scale <= 0:
        raise ValueError("REPRO_TRACE_SCALE must be positive")
    return scale


@lru_cache(maxsize=None)
def get_trace(name: str, scale: float | None = None) -> Trace:
    """Generate (or fetch from cache) one of the named benchmark traces."""
    if name not in TRACE_NAMES:
        raise KeyError(f"unknown trace {name!r}; expected one of {TRACE_NAMES}")
    if scale is None:
        scale = default_scale()
    events = max(200, int(_BASE_EVENTS[name] * scale))

    if name == "S1":
        # Journal paper written by two authors taking turns; a bit over half
        # of the typed characters survive editing.
        return generate_sequential("S1", target_events=events, authors=2, seed=101)
    if name == "S2":
        # Single-author blog post with heavier rewriting.
        return generate_sequential("S2", target_events=events, authors=1, seed=102)
    if name == "S3":
        # This paper: two authors, lots of rewriting (few characters survive).
        return generate_sequential("S3", target_events=events, authors=2, seed=103)
    if name == "C1":
        return generate_concurrent(
            "C1", target_events=events, seed=201, events_per_exchange=22
        )
    if name == "C2":
        return generate_concurrent(
            "C2", target_events=events, seed=202, events_per_exchange=18
        )
    if name == "A1":
        # Few long-running branches, one at a time (fork/merge bubbles):
        # mostly sequential with occasional large merges.
        return generate_async(
            "A1",
            target_events=events,
            seed=301,
            concurrent_branches=2,
            events_per_branch=max(200, events // 12),
            authors=24,
        )
    # A2: many branches alive at every moment, so the graph contains no
    # critical versions after the initial seeding and merges are expensive.
    return generate_async(
        "A2",
        target_events=events,
        seed=302,
        concurrent_branches=6,
        events_per_branch=max(120, events // 16),
        authors=48,
    )


def load_all_traces(scale: float | None = None) -> dict[str, Trace]:
    """All seven benchmark traces keyed by name."""
    return {name: get_trace(name, scale) for name in TRACE_NAMES}
