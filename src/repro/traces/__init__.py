"""Editing traces: data model, synthetic generators, dataset registry, statistics."""

from .datasets import PAPER_TABLE1, TRACE_NAMES, default_scale, get_trace, load_all_traces
from .generator import TypingModel, generate_async, generate_concurrent, generate_sequential
from .stats import TraceStats, compute_stats
from .trace import Trace, TraceKind

__all__ = [
    "PAPER_TABLE1",
    "TRACE_NAMES",
    "Trace",
    "TraceKind",
    "TraceStats",
    "TypingModel",
    "compute_stats",
    "default_scale",
    "generate_async",
    "generate_concurrent",
    "generate_sequential",
    "get_trace",
    "load_all_traces",
]
