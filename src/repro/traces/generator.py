"""Synthetic editing-trace generators (the stand-in for the paper's datasets).

The paper benchmarks on recorded keystroke traces of real documents (§4.1).
Those recordings are not reproducible here, so this module generates synthetic
traces with the same *structure*:

* :func:`generate_sequential` — one or two authors typing a document in turns,
  with realistic word-at-a-time typing, backspacing and cursor movement.  The
  resulting graph is a single linear run (S1–S3).
* :func:`generate_concurrent` — two authors editing at the same time with
  network latency between them, producing a large number of short-lived
  branches that merge within a few events (C1–C2).
* :func:`generate_async` — a Git-like workflow: authors fork long-running
  branches from a shared mainline, edit them independently (possibly keeping
  several branches alive at once so that no critical versions exist), and
  merge them back (A1–A2).

All generators are deterministic given a seed.  The typing model writes words
drawn from a small vocabulary, deletes and retypes recent text, and moves the
cursor, so that the fraction of surviving characters and the run structure are
in the same ballpark as the paper's Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.document import Document
from .trace import Trace

__all__ = [
    "TypingModel",
    "generate_sequential",
    "generate_concurrent",
    "generate_async",
]

_VOCABULARY = (
    "the quick brown fox jumps over lazy dog collaborative text editing with "
    "event graph walker merges concurrent operations faster smaller better "
    "replica network latency branch offline version history algorithm paper "
    "benchmark trace document character insert delete memory state critical"
).split()


@dataclass(slots=True)
class TypingModel:
    """Parameters of the synthetic typist."""

    #: Probability that the next burst deletes text instead of inserting.
    delete_probability: float = 0.22
    #: Probability of jumping the cursor to a random position before a burst.
    jump_probability: float = 0.12
    #: Maximum number of characters deleted in one burst.
    max_delete_run: int = 12


class _Typist:
    """Simulates one author editing a :class:`Document` word by word."""

    def __init__(self, document: Document, rng: random.Random, model: TypingModel) -> None:
        self.document = document
        self.rng = rng
        self.model = model
        self.cursor = len(document)

    def burst(self, approx_events: int) -> int:
        """Perform roughly ``approx_events`` single-character events."""
        produced = 0
        while produced < approx_events:
            doc_len = len(self.document)
            self.cursor = min(self.cursor, doc_len)
            if self.rng.random() < self.model.jump_probability:
                self.cursor = self.rng.randint(0, doc_len) if doc_len else 0
            if doc_len > 4 and self.rng.random() < self.model.delete_probability:
                run = self.rng.randint(1, self.model.max_delete_run)
                run = min(run, doc_len)
                pos = max(0, min(self.cursor, doc_len - run))
                self.document.delete(pos, run)
                self.cursor = pos
                produced += run
            else:
                word = self.rng.choice(_VOCABULARY)
                text = word + " "
                pos = min(self.cursor, len(self.document))
                self.document.insert(pos, text)
                self.cursor = pos + len(text)
                produced += len(text)
        return produced


def generate_sequential(
    name: str,
    *,
    target_events: int,
    authors: int = 1,
    seed: int = 0,
    model: TypingModel | None = None,
) -> Trace:
    """A purely sequential trace: authors take turns, nothing is concurrent."""
    rng = random.Random(seed)
    model = model or TypingModel()
    document = Document("author0")
    typists = []
    for i in range(authors):
        # All authors edit the *same* replica in turns, which is exactly what
        # "taking turns" means: every event happens after all previous ones.
        typists.append(_Typist(document, rng, model))

    produced = 0
    turn = 0
    while produced < target_events:
        typist = typists[turn % authors]
        document.agent = f"author{turn % authors}"
        document.oplog.agent = document.agent
        produced += typist.burst(min(200, target_events - produced))
        turn += 1
    return Trace(
        name=name,
        kind="sequential",
        graph=document.oplog.graph,
        description=f"{authors} author(s) taking turns, no concurrency",
        authors=authors,
        seed=seed,
    )


def generate_concurrent(
    name: str,
    *,
    target_events: int,
    seed: int = 0,
    events_per_exchange: int = 24,
    model: TypingModel | None = None,
) -> Trace:
    """Two authors editing simultaneously with latency between them.

    Between synchronisation points each author types a short burst against
    their own replica; the bursts are concurrent with each other, giving the
    many short-lived branches of the paper's C1/C2 traces.
    """
    rng = random.Random(seed)
    model = model or TypingModel()
    alice = Document("alice")
    bob = Document("bob")
    alice_typist = _Typist(alice, rng, model)
    bob_typist = _Typist(bob, rng, model)

    produced = 0
    while produced < target_events:
        burst = max(4, int(rng.gauss(events_per_exchange / 2, events_per_exchange / 6)))
        produced += alice_typist.burst(burst)
        produced += bob_typist.burst(burst)
        # The artificial latency elapses: both sides exchange their edits.
        alice.merge(bob)
        bob.merge(alice)
        alice_typist.cursor = min(alice_typist.cursor, len(alice))
        bob_typist.cursor = min(bob_typist.cursor, len(bob))
    alice.merge(bob)
    bob.merge(alice)
    return Trace(
        name=name,
        kind="concurrent",
        graph=alice.oplog.graph,
        description="two authors editing in real time with artificial latency",
        authors=2,
        seed=seed,
    )


def generate_async(
    name: str,
    *,
    target_events: int,
    seed: int = 0,
    concurrent_branches: int = 2,
    events_per_branch: int = 400,
    authors: int = 8,
    keep_unmerged: bool = False,
    model: TypingModel | None = None,
) -> Trace:
    """A Git-like trace: long-running branches forked from and merged into a mainline.

    Args:
        target_events: approximate total number of events to generate.
        concurrent_branches: how many branches are kept alive at any time.
            With 1 the history is a chain of fork/merge bubbles (like A1);
            with several, new branches fork before old ones merge, so the
            graph never has a critical version after the first fork (like A2).
        events_per_branch: approximate events per branch before it merges.
        authors: number of distinct branch authors to rotate through.
        keep_unmerged: leave the final branches unmerged (history ends with
            several heads) — useful for "merge two long branches" scenarios.
    """
    rng = random.Random(seed)
    model = model or TypingModel()
    main = Document("maintainer")
    # Seed the document with a little initial content so branches have
    # something to edit around.
    _Typist(main, rng, model).burst(min(200, max(40, target_events // 50)))

    produced = len(main.oplog.graph)
    branches: list[tuple[Document, _Typist]] = []
    author_counter = 0

    def fork() -> None:
        nonlocal author_counter
        author = f"dev{author_counter % authors}"
        author_counter += 1
        branch = Document(author)
        branch.merge(main)
        branches.append((branch, _Typist(branch, rng, model)))

    for _ in range(concurrent_branches):
        fork()

    while produced < target_events:
        # Every live branch gets some work.
        for branch, typist in branches:
            burst = max(10, int(rng.gauss(events_per_branch / 4, events_per_branch / 8)))
            produced += typist.burst(burst)
        # Merge the oldest branch back into main and fork a replacement, so
        # the number of live branches stays constant.
        branch, _ = branches.pop(0)
        main.merge(branch)
        fork()

    if not keep_unmerged:
        for branch, _ in branches:
            main.merge(branch)
    return Trace(
        name=name,
        kind="asynchronous",
        graph=main.oplog.graph,
        description=(
            f"git-style history, ~{concurrent_branches} live branches, "
            f"{authors} authors"
        ),
        authors=authors + 1,
        seed=seed,
    )
