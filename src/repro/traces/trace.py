"""Editing-trace data model (paper §4.1).

A trace is an event graph recorded from (or, in this reproduction, synthesised
to match) a real editing session, together with descriptive metadata.  The
benchmark suite loads traces from :mod:`repro.traces.datasets`, feeds their
event graphs to each algorithm, and reports the statistics of Table 1 computed
by :mod:`repro.traces.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..core.event_graph import EventGraph
from ..core.walker import EgWalker

__all__ = ["Trace", "TraceKind"]

TraceKind = Literal["sequential", "concurrent", "asynchronous"]


@dataclass(slots=True)
class Trace:
    """One benchmark editing trace.

    Attributes:
        name: short identifier (S1, S2, S3, C1, C2, A1, A2 — or a custom name).
        kind: the paper's trace category.
        graph: the full event graph of the editing session.
        description: one-line description of what the trace models.
        authors: number of distinct users that contributed events.
        seed: RNG seed used to generate the trace (for reproducibility).
    """

    name: str
    kind: TraceKind
    graph: EventGraph
    description: str = ""
    authors: int = 0
    seed: int = 0
    _final_text: str | None = field(default=None, repr=False)

    @property
    def num_events(self) -> int:
        """Number of per-character events (the paper's Table-1 event count).

        The graph stores run events; each covers ``op.length`` characters.
        """
        return self.graph.num_chars

    @property
    def num_run_events(self) -> int:
        """Number of run events the graph actually stores."""
        return len(self.graph)

    @property
    def final_text(self) -> str:
        """The merged document text (computed once, on demand)."""
        if self._final_text is None:
            walker = EgWalker(self.graph)
            self._final_text = walker.replay_text()
        return self._final_text

    def summary_line(self) -> str:
        return (
            f"{self.name:4s} {self.kind:13s} events={self.num_events:7d} "
            f"runs={self.num_run_events:6d} authors={self.authors:3d} "
            f"final={len(self.final_text)} chars"
        )
