"""The analysis driver: walk files, run rules, apply suppressions + baseline.

The driver is the one place that knows about the three filtering layers:

1. rule path scoping (``Rule.applies_to``),
2. per-line suppression comments (``# lint: disable=rule``),
3. the committed baseline of grandfathered findings.

``analyze_source`` is the unit-test entry point (lint a string under an
arbitrary virtual path, so fixture snippets can exercise path-scoped rules);
``run_analysis`` is what the CLI and the meta-test use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding
from .rules import ModuleContext, Rule, all_rules
from .suppressions import collect_suppressions

__all__ = ["AnalysisResult", "analyze_source", "iter_python_files", "run_analysis"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".benchmarks"}


@dataclass(slots=True)
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.baselined.extend(other.baselined)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


def _posix(path: Path | str) -> str:
    return str(path).replace("\\", "/")


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the ordered list of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


def analyze_source(
    source: str,
    path: str,
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Lint one source string as if it lived at ``path``.

    Raises:
        SyntaxError: if ``source`` does not parse; the caller decides how a
            broken file is reported (the CLI turns it into an error exit).
    """
    result = AnalysisResult(files_checked=1)
    tree = ast.parse(source, filename=path)
    module = ModuleContext(
        path=_posix(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    suppressions = collect_suppressions(source)
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(module.path):
            continue
        for finding in rule.check(module):
            if suppressions.covers(finding.line, finding.rule):
                result.suppressed.append(finding)
            elif baseline is not None and baseline.consume(finding) is not None:
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    return result


def run_analysis(
    paths: Sequence[Path],
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Lint every python file under ``paths``; see :class:`AnalysisResult`.

    Files that fail to parse surface as a ``parse-error`` finding (never
    baselined or suppressed — a broken file must fail the gate loudly).
    """
    rule_list = list(rules) if rules is not None else all_rules()
    total = AnalysisResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            result = analyze_source(source, _posix(file_path), rule_list, baseline)
        except SyntaxError as exc:
            total.findings.append(
                Finding(
                    rule="parse-error",
                    path=_posix(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            total.files_checked += 1
            continue
        total.extend(result)
    if baseline is not None:
        total.stale_baseline = baseline.stale_entries()
    return total
