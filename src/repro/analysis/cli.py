"""Command-line interface: ``python -m repro.analysis [paths ...]``.

Exit status is 0 when every finding is suppressed or baselined, 1 when
actionable findings remain (or a file failed to parse), 2 on usage errors —
so the CI job gates directly on the exit code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import Baseline
from .driver import run_analysis
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = ["main"]

DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo's invariant-aware lint rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline JSON of grandfathered findings (default: "
            f"{DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "write every current finding to FILE as a new baseline (each "
            "entry then needs a hand-written justification) and exit 0"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined and suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule battery and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.include) if rule.include else "all files"
            print(f"{rule.name}  [{scope}]")
            print(f"    {rule.description}")
        return 0

    if args.select:
        wanted = {name.strip() for name in args.select.split(",") if name.strip()}
        unknown = wanted - {rule.name for rule in rules}
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.name in wanted]
    if args.ignore:
        dropped = {name.strip() for name in args.ignore.split(",") if name.strip()}
        rules = [rule for rule in rules if rule.name not in dropped]

    baseline: Baseline | None = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)
        elif args.baseline:
            print(f"baseline file not found: {baseline_path}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(str(p) for p in missing)}", file=sys.stderr
        )
        return 2

    result = run_analysis(paths, rules=rules, baseline=baseline)

    if args.write_baseline is not None:
        new_baseline = Baseline.from_findings(
            result.findings, justification="TODO: justify or fix"
        )
        new_baseline.save(Path(args.write_baseline))
        print(
            f"wrote {len(result.findings)} entr(y/ies) to {args.write_baseline}; "
            "replace every TODO justification before committing"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1
