"""Finding: one rule violation at one source location.

A finding's identity for baselining purposes is its :attr:`fingerprint` —
a hash of the rule name, the file path and the *text* of the offending line
(normalised for whitespace), deliberately excluding the line number so that
unrelated edits above a grandfathered finding do not invalidate the baseline.
Two identical lines in the same file share a fingerprint; the baseline
therefore stores one entry per occurrence and entries are consumed
multiset-style (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


def _normalise(snippet: str) -> str:
    return " ".join(snippet.split())


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: registry name of the rule that fired (kebab-case).
        path: posix-style path of the file, as given to the driver.
        line: 1-based line number of the violation.
        col: 0-based column offset.
        message: human-readable explanation, including the invariant guarded.
        snippet: the offending source line, stripped.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        payload = "\x00".join((self.rule, self.path, _normalise(self.snippet)))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
