"""The committed baseline of grandfathered findings.

The baseline is a JSON file listing findings that are *known and accepted*:
each entry carries the rule, path, line-number-independent fingerprint
(:attr:`~repro.analysis.findings.Finding.fingerprint`) and a mandatory
one-line justification.  The linter exits non-zero only for findings **not**
covered by the baseline, so new violations fail CI while the accepted ones
stay visible (and auditable) in one place.

Entries are consumed multiset-style: two identical offending lines in the
same file need two entries.  Entries that no longer match anything are
reported as *stale* so the baseline shrinks over time instead of fossilising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline"]


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    justification: str
    snippet: str = ""

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "justification": self.justification,
            "snippet": self.snippet,
        }


class Baseline:
    """A multiset of accepted findings, loaded from / saved to JSON."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries: list[BaselineEntry] = list(entries or [])
        self._available: dict[str, list[BaselineEntry]] = {}
        for entry in self.entries:
            self._available.setdefault(entry.fingerprint, []).append(entry)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                fingerprint=raw["fingerprint"],
                justification=raw.get("justification", ""),
                snippet=raw.get("snippet", ""),
            )
            for raw in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "comment": (
                "Grandfathered findings of `python -m repro.analysis`; every "
                "entry needs a one-line justification.  Remove entries as the "
                "code they cover is fixed (stale entries are reported)."
            ),
            "entries": [entry.as_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: list[Finding], justification: str) -> "Baseline":
        return cls(
            [
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    fingerprint=f.fingerprint,
                    justification=justification,
                    snippet=f.snippet,
                )
                for f in findings
            ]
        )

    # ------------------------------------------------------------------
    def consume(self, finding: Finding) -> BaselineEntry | None:
        """Match ``finding`` against an unconsumed entry (and consume it)."""
        bucket = self._available.get(finding.fingerprint)
        if bucket:
            return bucket.pop()
        return None

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries not consumed by any finding of the last run."""
        return [entry for bucket in self._available.values() for entry in bucket]
