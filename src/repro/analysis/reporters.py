"""Text and JSON rendering of an :class:`~repro.analysis.driver.AnalysisResult`."""

from __future__ import annotations

import json

from .driver import AnalysisResult

__all__ = ["render_text", "render_json"]


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in sorted(result.findings, key=lambda f: (f.path, f.line, f.rule)):
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose:
        for finding in sorted(result.baselined, key=lambda f: (f.path, f.line)):
            lines.append(f"[baselined] {finding.render()}")
        for finding in sorted(result.suppressed, key=lambda f: (f.path, f.line)):
            lines.append(f"[suppressed] {finding.render()}")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} @ {entry.path} "
            f"({entry.fingerprint}) — remove it: {entry.justification!r}"
        )
    lines.append(
        f"{result.files_checked} files checked: {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, {len(result.suppressed)} suppressed, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies)"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (stable keys; consumed by tooling/CI)."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "baselined": [f.as_dict() for f in result.baselined],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "stale_baseline": [e.as_dict() for e in result.stale_baseline],
    }
    return json.dumps(payload, indent=2)
