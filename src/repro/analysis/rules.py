"""Rule base class, the rule registry, and the per-module context.

A rule is an AST-level check with a registry name, a one-line description,
and an optional *path scope*: ``include`` fragments restrict the rule to
files whose posix path contains one of them (empty means every file), and
``exclude`` fragments carve out files where the pattern is the implementation
itself (e.g. the deprecated shims are defined — and therefore mentioned — in
``core/document.py``).  Scoping by path *fragment* keeps the match working
whether the tree is scanned as ``src/``, ``./src`` or an absolute path.

Rules yield :class:`~repro.analysis.findings.Finding` objects from
:meth:`Rule.check`; the driver applies suppression comments and the baseline
afterwards, so rules themselves stay oblivious to both mechanisms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from .findings import Finding

__all__ = ["ModuleContext", "Rule", "register", "all_rules", "get_rule"]


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule may look at for one file."""

    path: str  # posix-style, as reported in findings
    source: str
    tree: ast.Module
    lines: list[str]  # source split into lines (1-based access via line_at)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for all checks.  Subclasses are registered by decorator."""

    name: str = ""
    description: str = ""
    #: Path fragments this rule is restricted to (empty: every file).
    include: tuple[str, ...] = ()
    #: Path fragments where this rule never fires (the rule's own home).
    exclude: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(fragment in path for fragment in self.exclude):
            return False
        if not self.include:
            return True
        return any(fragment in path for fragment in self.include)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=module.path,
            line=lineno,
            col=col,
            message=message,
            snippet=module.line_at(lineno),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by name (imports the rule modules)."""
    from . import checks  # noqa: F401  (registration side effect)

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rule(name: str) -> Rule:
    from . import checks  # noqa: F401

    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown rule {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for every function/method in the module."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    for qual, node in visit(tree, ""):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        yield qual, node


#: Type of the per-node callback used by small custom walkers.
NodeCallback = Callable[[ast.AST], None]
