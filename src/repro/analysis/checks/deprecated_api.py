"""Rule: ban the deprecated index/tuple snapshot APIs outside their shims.

PR 5 made id-based :class:`~repro.history.Version` handles the one snapshot
currency; the old index-based APIs survive only as ``DeprecationWarning``
shims (``Document.text_at_remote`` / ``.remote_version`` /
``.history_versions`` and ``OpLog.version``).  PR 7 showed why the shims must
stay quarantined: ``Document.remote_version`` silently drifted from
``version()`` because live code still called it.  This rule bans any *use*
(attribute access) of the shims outside the modules that define them and the
parity tests that pin their behaviour.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..rules import ModuleContext, Rule, register

#: Shim attributes banned on any receiver.
_BANNED_ATTRS = {
    "text_at_remote": "Document.text_at_remote (use History.text_at(Version(...)))",
    "remote_version": "Document.remote_version (use Document.version().ids)",
    "history_versions": "Document.history_versions (use Document.versions())",
}

#: ``.version`` is only deprecated on an *oplog* receiver (``Document.version()``
#: is the blessed API), so it is banned only when the receiver is recognisably
#: an oplog: a name containing "oplog"/"op_log", or an attribute chain ending
#: in ``.oplog``.
_OPLOG_ATTR = "version"


def _is_oplog_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        lowered = node.id.lower()
        return "oplog" in lowered or "op_log" in lowered
    if isinstance(node, ast.Attribute):
        lowered = node.attr.lower()
        return "oplog" in lowered or "op_log" in lowered
    return False


@register
class DeprecatedSnapshotApiRule(Rule):
    name = "deprecated-snapshot-api"
    description = (
        "index/tuple snapshot shims (text_at_remote, remote_version, "
        "history_versions, OpLog.version) must not be used outside the shim "
        "modules and their parity tests"
    )
    exclude = (
        # The shims are defined (and documented) here.
        "repro/core/document.py",
        "repro/core/oplog.py",
        # The parity tests pin shim behaviour against the new APIs.
        "tests/test_deprecation_shims.py",
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in _BANNED_ATTRS:
                yield self.finding(
                    module,
                    node,
                    f"deprecated snapshot API {_BANNED_ATTRS[node.attr]}; "
                    "id-based Version handles are the one snapshot currency",
                )
            elif node.attr == _OPLOG_ATTR and _is_oplog_receiver(node.value):
                yield self.finding(
                    module,
                    node,
                    "deprecated OpLog.version (use OpLog.local_version, or "
                    "Document.version() for a stable id-based handle)",
                )
