"""Rule: no per-character work inside the run-native modules.

The paper's "Faster" claim rests on every layer processing **runs**, not
characters: the event graph, oplog, walker, CRDT records and storage encoder
all cost O(runs) on realistic traces.  A ``for`` loop over a run's content
(or over ``range(op.length)``), or a call to the per-character oracle
:func:`~repro.core.event_graph.expand_to_chars`, inside one of those modules
silently reintroduces the O(chars) cost profile the whole pipeline exists to
avoid — precisely the kind of regression that only shows up later as a bench
cliff.  The per-character representation is *supposed* to exist in exactly
two places: the oracle itself and the fuzzer/reference implementations that
check against it; those are allowlisted by (path, function) below.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..rules import ModuleContext, Rule, register

#: (path fragment, enclosing function name) pairs where per-character work is
#: the entire point (the oracle's own definition).
_ALLOWED_FUNCTIONS = (
    ("repro/core/event_graph.py", "expand_to_chars"),
)

#: Attributes whose iteration means per-character work on a run.
_CONTENT_ATTRS = {"content"}
#: Attributes that, used as a ``range()`` bound, mean a per-character loop.
_LENGTH_ATTRS = {"length", "num_chars"}
#: Wrappers whose arguments are still iterated element-wise.
_ITER_WRAPPERS = {"zip", "enumerate", "iter", "reversed", "map"}


def _content_attribute(node: ast.expr) -> ast.Attribute | None:
    """The ``X.content`` attribute iterated by ``node``, if any (unwrapping
    ``zip(...)`` / ``enumerate(...)`` style wrappers one level deep)."""
    if isinstance(node, ast.Attribute) and node.attr in _CONTENT_ATTRS:
        return node
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ITER_WRAPPERS
    ):
        for arg in node.args:
            found = _content_attribute(arg)
            if found is not None:
                return found
    return None


def _per_char_range(node: ast.expr) -> ast.Attribute | None:
    """The ``X.length`` / ``X.num_chars`` bound of a ``range(...)`` iterated
    by ``node``, if any."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    ):
        for arg in node.args:
            if isinstance(arg, ast.Attribute) and arg.attr in _LENGTH_ATTRS:
                return arg
    return None


@register
class PerCharHotPathRule(Rule):
    name = "per-char-hot-path"
    description = (
        "run-native modules (core/, crdt/list_crdt.py, storage/) must not "
        "loop per character; the per-character representation lives only in "
        "the oracle and the code that checks against it"
    )
    include = (
        "repro/core/",
        "repro/crdt/list_crdt.py",
        "repro/storage/",
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        allowed_functions = {
            name
            for fragment, name in _ALLOWED_FUNCTIONS
            if fragment in module.path
        }
        yield from self._visit(module, module.tree, in_allowed=False,
                               allowed=allowed_functions)

    # ------------------------------------------------------------------
    def _visit(
        self,
        module: ModuleContext,
        node: ast.AST,
        in_allowed: bool,
        allowed: set[str],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_allowed = in_allowed
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_allowed = in_allowed or child.name in allowed
            if not child_allowed:
                yield from self._check_node(module, child)
            yield from self._visit(module, child, child_allowed, allowed)

    def _check_node(self, module: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        iter_exprs: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_exprs.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iter_exprs.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "expand_to_chars":
                yield self.finding(
                    module,
                    node,
                    "call to the per-character oracle expand_to_chars in a "
                    "run-native module; the O(chars) expansion belongs to the "
                    "oracle/fuzzer only",
                )
            return
        for expr in iter_exprs:
            content = _content_attribute(expr)
            if content is not None:
                yield self.finding(
                    module,
                    content,
                    "per-character loop over run content in a run-native "
                    "module; process whole runs (O(runs), not O(chars))",
                )
                continue
            bound = _per_char_range(expr)
            if bound is not None:
                yield self.finding(
                    module,
                    bound,
                    f"per-character loop over range(….{bound.attr}) in a "
                    "run-native module; process whole runs (O(runs), not "
                    "O(chars))",
                )
