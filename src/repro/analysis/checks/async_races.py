"""Rule: no read → ``await`` → write interleavings on ``self`` state.

``repro.server`` mutates shared room/session state from asyncio coroutines.
Between a read of ``self.x`` and an ``await``, any other task may run and
change ``self.x``; a write after the suspension point that was computed from
the *pre-await* read then clobbers the concurrent update (or acts on stale
state) — the exact shape of bug that makes WebSocket fan-out lose deltas.

The detector walks each ``async def`` in evaluation order and tracks, per
``self``-rooted attribute, a tiny state machine:

* a **read** of ``self.x`` (any ``Load`` of the attribute, including as the
  receiver of a method call or subscript) marks the attribute *read*;
* an **await** (also ``async for`` / ``async with``) marks every currently
  *read* attribute as *stale* — the value observed before the suspension can
  no longer be trusted;
* a **write** (``self.x = ...`` / ``del self.x``) to a *stale* attribute is
  flagged; a fresh read after the await (before the write) resets the
  attribute and is the sanctioned fix (re-read, re-validate, then write).

Augmented assignment (``self.x += 1``) re-reads at the write site, so per the
invariant's definition ("without an intervening re-read") it is not flagged.
Branches are analysed independently and merged pessimistically; loop bodies
are walked twice so a read-at-top / write-at-bottom cycle straddling an
``await`` is still caught.  Only direct ``self.x`` rebinds count as writes —
mutating a nested object (``self.stats.n += 1``) does not lose the attribute
binding itself and is out of scope for this rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..rules import ModuleContext, Rule, register

# Per-attribute states.
_CLEAN = 0  # never read, or last event was a write
_READ = 1  # read since the last await
_STALE = 2  # read, then at least one await suspended the coroutine
_SEVERITY = {_CLEAN: 0, _READ: 1, _STALE: 2}


class _FunctionScan:
    """Evaluation-order walk of one ``async def`` body."""

    def __init__(self) -> None:
        self.state: dict[str, int] = {}
        #: (attribute, write node) pairs that matched read → await → write.
        self.races: list[tuple[str, ast.AST]] = []
        #: Control left the current linear path (return/raise/break/continue):
        #: later statements of this branch are unreachable, and the branch
        #: contributes nothing to a merge (re-read → validate → raise is the
        #: sanctioned fix pattern and must not re-flag).
        self.terminated = False

    # -- state machine -------------------------------------------------
    def read(self, attr: str) -> None:
        self.state[attr] = _READ

    def write(self, attr: str, node: ast.AST) -> None:
        if self.state.get(attr, _CLEAN) == _STALE:
            self.races.append((attr, node))
        self.state[attr] = _CLEAN

    def suspend(self) -> None:
        for attr, value in self.state.items():
            if value == _READ:
                self.state[attr] = _STALE

    def snapshot(self) -> dict[str, int]:
        return dict(self.state)

    def merge(self, *branches: dict[str, int]) -> None:
        merged: dict[str, int] = {}
        for branch in branches:
            for attr, value in branch.items():
                if _SEVERITY[value] > _SEVERITY[merged.get(attr, _CLEAN)]:
                    merged[attr] = value
        self.state = merged

    # -- expression / statement walk ------------------------------------
    def emit_expr(self, node: ast.AST | None) -> None:
        """Walk an expression in evaluation order, recording reads/awaits."""
        if node is None:
            return
        if isinstance(node, ast.Await):
            self.emit_expr(node.value)  # the awaitable is built pre-suspension
            self.suspend()
            return
        if isinstance(node, ast.Attribute):
            self.emit_expr(node.value)
            if self._is_self(node.value) and isinstance(node.ctx, ast.Load):
                self.read(node.attr)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # a nested body does not execute here
        for child in ast.iter_child_nodes(node):
            self.emit_expr(child)

    @staticmethod
    def _is_self(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == "self"

    def emit_store(self, target: ast.AST) -> None:
        """Walk an assignment target: nested receivers are reads, a direct
        ``self.x`` is the write this rule cares about."""
        if isinstance(target, ast.Attribute):
            if self._is_self(target.value):
                self.write(target.attr, target)
            else:
                self.emit_expr(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.emit_store(element)
        elif isinstance(target, (ast.Subscript, ast.Starred)):
            # self.x[k] = v mutates the object; the binding self.x is *read*.
            self.emit_expr(target)
        elif isinstance(target, ast.Name):
            pass  # local variable
        else:  # pragma: no cover - future node types
            self.emit_expr(target)

    # -- statements ----------------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.terminated:
                return  # unreachable after return/raise/break/continue
            self.statement(stmt)

    def statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self.emit_expr(node.value)
            for target in node.targets:
                self.emit_store(target)
        elif isinstance(node, ast.AnnAssign):
            self.emit_expr(node.value)
            self.emit_store(node.target)
        elif isinstance(node, ast.AugAssign):
            # Reads the target at the write site: an intervening re-read by
            # definition, so record read then clean (never a race here).
            self.emit_expr(node.value)
            if isinstance(node.target, ast.Attribute) and self._is_self(node.target.value):
                self.read(node.target.attr)
                self.state[node.target.attr] = _CLEAN
            else:
                self.emit_expr(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and self._is_self(target.value):
                    self.write(target.attr, target)
                else:
                    self.emit_expr(target)
        elif isinstance(node, ast.If):
            self.emit_expr(node.test)
            before = self.snapshot()
            self.run(node.body)
            taken, taken_terminated = self.snapshot(), self.terminated
            self.state, self.terminated = dict(before), False
            self.run(node.orelse)
            else_terminated = self.terminated
            # A branch that leaves (return/raise/...) contributes nothing to
            # the merged fall-through state: "re-read, validate, bail out" is
            # the sanctioned fix for this rule and must come out clean.
            if taken_terminated and else_terminated:
                self.terminated = True
            elif taken_terminated:
                self.terminated = False  # fall-through state = else branch
            elif else_terminated:
                self.state, self.terminated = taken, False
            else:
                self.merge(taken, self.snapshot())
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(node, ast.While):
                self.emit_expr(node.test)
            else:
                self.emit_expr(node.iter)
            is_async = isinstance(node, ast.AsyncFor)
            before = self.snapshot()
            for _ in range(2):  # twice: catch cross-iteration read→await→write
                if is_async:
                    self.suspend()  # each iteration suspends on __anext__
                self.run(node.body)
                self.terminated = False  # break/continue/return end one path
                self.merge(before, self.snapshot())
            self.run(node.orelse)
            self.terminated = False
        elif isinstance(node, ast.Try):
            before = self.snapshot()
            self.run(node.body)
            self.terminated = False
            after_body = self.snapshot()
            handler_states = []
            for handler in node.handlers:
                self.merge(before, after_body)  # exception may hit anywhere
                self.run(handler.body)
                self.terminated = False
                handler_states.append(self.snapshot())
            self.merge(after_body, *handler_states)
            self.run(node.orelse)
            self.terminated = False
            self.run(node.finalbody)
            self.terminated = False
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.emit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.emit_store(item.optional_vars)
            if isinstance(node, ast.AsyncWith):
                self.suspend()  # __aenter__
            self.run(node.body)
            if isinstance(node, ast.AsyncWith):
                self.suspend()  # __aexit__
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions execute later, elsewhere
        elif isinstance(node, (ast.Return, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                self.emit_expr(child)
            self.terminated = True
        elif isinstance(node, (ast.Break, ast.Continue)):
            self.terminated = True
        elif isinstance(node, (ast.Expr, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                self.emit_expr(child)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self.statement(child)
                else:
                    self.emit_expr(child)


@register
class AwaitStateRaceRule(Rule):
    name = "await-state-race"
    description = (
        "async method reads self-state, suspends at an await, then writes the "
        "same attribute without re-reading: a concurrent task's update is "
        "silently clobbered"
    )
    include = ("repro/server/", "repro/faults/")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            args = node.args
            if not (args.posonlyargs or args.args):
                continue
            first = (args.posonlyargs or args.args)[0].arg
            if first != "self":
                continue  # free functions have no shared instance state
            scan = _FunctionScan()
            scan.run(node.body)
            seen: set[tuple[str, int, int]] = set()
            for attr, write_node in scan.races:
                key = (
                    attr,
                    getattr(write_node, "lineno", 0),
                    getattr(write_node, "col_offset", 0),
                )
                if key in seen:  # loop bodies are walked twice
                    continue
                seen.add(key)
                yield self.finding(
                    module,
                    write_node,
                    f"self.{attr} is read before an await and written after "
                    f"it in {node.name!r} without an intervening re-read; a "
                    "task interleaving at the await sees its update "
                    "clobbered — re-read (and re-validate) after the "
                    "suspension point, or restructure to capture-then-write "
                    "before awaiting",
                )
