"""Rule modules; importing this package registers every rule.

Each module guards one (or a family of) load-bearing invariant(s) of the
codebase — see ``docs/architecture.md`` ("Invariants & static analysis") for
the rule-by-rule rationale.
"""

from . import async_races, columns, deprecated_api, hot_path, hygiene

__all__ = ["async_races", "columns", "deprecated_api", "hot_path", "hygiene"]
