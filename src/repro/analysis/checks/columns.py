"""Rule: ``EventGraph``'s private columns are touched only by ``event_graph.py``.

The graph stores events as handle-indexed parallel columns (``_h_id``,
``_h_op``, ``_order``, ``_labels``, ...).  The whole point of the handle
refactor (PR 6) is that *every* consumer goes through the handle APIs
(``handle_at`` / ``index_of_handle`` / ``order_key`` / the ``Event`` views),
so splits can re-label and re-spread without breaking anyone.  A module that
reaches into a column directly re-creates exactly the stale-index bugs the
refactor removed — and does so silently, because the columns are plain lists.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..rules import ModuleContext, Rule, register

#: The ``_h_*`` column family (one entry per handle).
_HANDLE_COLUMN = re.compile(r"^_h_[a-z]+$")

#: Order/aggregate columns: flagged only on a graph-like receiver, because
#: names like ``_order`` are plausible private state in unrelated classes.
_ORDER_COLUMNS = {
    "_order",
    "_labels",
    "_frontier",
    "_cum_inserts",
    "_agent_index",
    "_agent_names",
    "_agent_ids",
    "_next_seq",
}


def _is_graph_receiver(node: ast.expr) -> bool:
    """Does the receiver expression look like it names an event graph?"""
    if isinstance(node, ast.Name):
        return "graph" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "graph" in node.attr.lower()
    return False


@register
class ColumnEncapsulationRule(Rule):
    name = "column-encapsulation"
    description = (
        "EventGraph's private column arrays may only be touched through the "
        "handle APIs; direct access outside event_graph.py re-creates "
        "stale-index bugs"
    )
    exclude = ("repro/core/event_graph.py",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            receiver = node.value
            is_self = isinstance(receiver, ast.Name) and receiver.id == "self"
            if _HANDLE_COLUMN.match(node.attr):
                # The _h_ prefix is unique to the graph's columns; any
                # non-self receiver is a violation (self covers unrelated
                # classes that happen to reuse the prefix for their own state).
                if not is_self:
                    yield self.finding(
                        module,
                        node,
                        f"direct access to EventGraph column {node.attr!r}; go "
                        "through Event views / handle_at / index_of_handle",
                    )
            elif node.attr in _ORDER_COLUMNS and _is_graph_receiver(receiver):
                yield self.finding(
                    module,
                    node,
                    f"direct access to EventGraph private state {node.attr!r}; "
                    "use the public accessors (events(), frontier, locate(), "
                    "next_seq_for(), inserted_chars_through())",
                )
