"""General hygiene rules: the bug classes that keep resurfacing in reviews.

* ``mutable-default-arg`` — a ``[]`` / ``{}`` / ``set()`` default is shared
  across *all* calls of the function; mutating it leaks state between calls.
* ``frozen-dataclass-mutation`` — assigning to ``self`` inside a
  ``@dataclass(frozen=True)`` method raises at runtime, and
  ``object.__setattr__`` outside construction (``__init__`` /
  ``__post_init__`` / ``__new__``) silently breaks the immutability the
  ``frozen=True`` promised to every holder of the value (the history
  subsystem hands out frozen ``Version`` values precisely so they can be
  cached and shared).
* ``slots-attribute-escape`` — assigning an attribute not listed in
  ``__slots__`` raises ``AttributeError`` at runtime on a fully slotted
  class; on a partially slotted hierarchy it silently re-grows a ``__dict__``
  and the memory win the slots existed for evaporates.  Only classes whose
  bases are provably slotted (defined in the same module, or ``object``) are
  checked — an external base may provide a ``__dict__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..rules import ModuleContext, Rule, register

_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}

#: Methods where object.__setattr__ on a frozen instance is the sanctioned
#: construction-time idiom.
_CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__new__", "__setstate__"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultArgRule(Rule):
    name = "mutable-default-arg"
    description = (
        "mutable default argument ([] / {} / set() ...) is shared across all "
        "calls; use None and create the value inside the function"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {label!r}; the value is "
                        "created once and shared by every call",
                    )


def _dataclass_decoration(node: ast.ClassDef) -> dict[str, bool]:
    """``{'frozen': bool, 'slots': bool, 'is_dataclass': bool}`` for a class."""
    info = {"frozen": False, "slots": False, "is_dataclass": False}
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        info["is_dataclass"] = True
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg in ("frozen", "slots"):
                    value = keyword.value
                    if isinstance(value, ast.Constant) and value.value is True:
                        info[keyword.arg] = True
    return info


def _literal_slots(node: ast.ClassDef) -> set[str] | None:
    """The names in an explicit ``__slots__ = (...)`` assignment, if any."""
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                names: set[str] = set()
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return {value.value}
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.add(element.value)
                        else:
                            return None  # computed slots: cannot check
                    return names
                return None
    return None


def _field_names(node: ast.ClassDef) -> set[str]:
    """Annotated class-level names (= dataclass fields for a dataclass)."""
    names: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _self_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _self_attribute_stores(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Attribute]:
    def visit(node: ast.AST) -> Iterator[ast.Attribute]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs have their own self
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, (ast.Store, ast.Del))
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
            ):
                yield child
            yield from visit(child)

    yield from visit(func)


@register
class FrozenDataclassMutationRule(Rule):
    name = "frozen-dataclass-mutation"
    description = (
        "assignment to self in a frozen dataclass method, or "
        "object.__setattr__ outside construction: breaks the immutability "
        "every holder of the value relies on"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        # Direct self-assignments inside frozen dataclass methods.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _dataclass_decoration(node)["frozen"]:
                for method in _self_methods(node):
                    if method.name in _CONSTRUCTION_METHODS:
                        continue
                    for store in _self_attribute_stores(method):
                        yield self.finding(
                            module,
                            store,
                            f"assignment to self.{store.attr} in frozen "
                            f"dataclass {node.name!r} (method "
                            f"{method.name!r}) raises FrozenInstanceError at "
                            "runtime",
                        )
        # object.__setattr__ anywhere outside construction methods.
        yield from self._setattr_escapes(module)

    def _setattr_escapes(self, module: ModuleContext) -> Iterator[Finding]:
        def visit(node: ast.AST, in_construction: bool) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                child_in_construction = in_construction
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_in_construction = child.name in _CONSTRUCTION_METHODS
                if (
                    not child_in_construction
                    and isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "__setattr__"
                    and isinstance(child.func.value, ast.Name)
                    and child.func.value.id == "object"
                ):
                    yield self.finding(
                        module,
                        child,
                        "object.__setattr__ outside __init__/__post_init__ "
                        "bypasses frozen-dataclass immutability; holders of "
                        "the value assume it never changes",
                    )
                yield from visit(child, child_in_construction)

        yield from visit(module.tree, False)


@register
class SlotsAttributeEscapeRule(Rule):
    name = "slots-attribute-escape"
    description = (
        "assignment to an attribute not listed in __slots__; raises at "
        "runtime on a fully slotted class, silently re-grows a __dict__ "
        "otherwise"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        slots_of: dict[str, set[str] | None] = {}

        def resolve_slots(name: str, seen: frozenset[str] = frozenset()) -> set[str] | None:
            """Own + inherited slots, or None if the hierarchy is not provably
            fully slotted (external base, computed slots, cycles)."""
            if name in seen:
                return None
            if name in slots_of:
                return slots_of[name]
            node = classes.get(name)
            if node is None:
                return None
            decoration = _dataclass_decoration(node)
            if decoration["slots"]:
                own: set[str] | None = _field_names(node)
            else:
                own = _literal_slots(node)
            if own is None:
                slots_of[name] = None
                return None
            combined = set(own)
            for base in node.bases:
                if isinstance(base, ast.Name) and base.id == "object":
                    continue
                base_name = base.id if isinstance(base, ast.Name) else None
                inherited = (
                    resolve_slots(base_name, seen | {name}) if base_name else None
                )
                if inherited is None:
                    slots_of[name] = None
                    return None
                combined |= inherited
            slots_of[name] = combined
            return combined

        for name, node in classes.items():
            slots = resolve_slots(name)
            if slots is None or "__dict__" in slots:
                continue
            allowed = slots | {"__class__"}
            for method in _self_methods(node):
                for store in _self_attribute_stores(method):
                    if store.attr not in allowed and not (
                        store.attr.startswith("__") and store.attr.endswith("__")
                    ):
                        yield self.finding(
                            module,
                            store,
                            f"self.{store.attr} is not in {name}.__slots__ "
                            f"(= {sorted(slots)}); the assignment raises "
                            "AttributeError on a fully slotted class",
                        )
