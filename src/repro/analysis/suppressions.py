"""Per-line suppression comments.

A finding is suppressed by a comment on the *same physical line*::

    self.port = sock.getsockname()[1]  # lint: disable=await-state-race -- why

``disable=`` takes a comma-separated list of rule names; a bare
``# lint: disable`` silences every rule on that line.  Everything after the
rule list is free-form justification (encouraged — the fixture tests assert
the mechanism, reviewers read the why).

Comments are found with :mod:`tokenize`, so a ``# lint:`` inside a string
literal is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "collect_suppressions", "ALL_RULES"]

#: Sentinel meaning "every rule" in a suppression set.
ALL_RULES = "*"

#: Rule names are kebab-case; the list stops at the first token that is not a
#: comma-separated rule name, so free-form justification may follow.
_DIRECTIVE = re.compile(r"#\s*lint:\s*disable(?:=([\w\-]+(?:\s*,\s*[\w\-]+)*))?")


class Suppressions:
    """Map of line number -> set of suppressed rule names (or ``{'*'}``)."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        #: Count of findings actually silenced (filled in by the driver).
        self.used = 0

    def add(self, line: int, rules: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rules)

    def covers(self, line: int, rule: str) -> bool:
        rules = self._by_line.get(line)
        if not rules:
            return False
        return ALL_RULES in rules or rule in rules

    def __len__(self) -> int:
        return len(self._by_line)


def collect_suppressions(source: str) -> Suppressions:
    """Parse every ``# lint: disable`` comment in ``source``."""
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            names = match.group(1)
            if names is None:
                suppressions.add(token.start[0], {ALL_RULES})
            else:
                rules = {part.strip() for part in names.split(",") if part.strip()}
                suppressions.add(token.start[0], rules or {ALL_RULES})
    except tokenize.TokenError:  # unterminated string etc.; AST parse will
        pass  # have failed too, and the driver reports that instead.
    return suppressions
