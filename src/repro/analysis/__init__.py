"""Invariant-aware static analysis for this repository.

The replay pipeline carries a stack of invariants that exist nowhere in the
type system: id-based ``Version`` handles are the one snapshot currency,
``EventGraph``'s columns are private to ``event_graph.py``, run-native
modules never loop per character, and ``repro.server`` coroutines must not
read-``await``-write shared state.  Each was violated at least once by an
earlier PR and caught late; this package machine-checks them on every push.

The pieces:

* :mod:`repro.analysis.rules` — rule base class + registry, path scoping;
* :mod:`repro.analysis.checks` — the rule battery (see each module);
* :mod:`repro.analysis.suppressions` — ``# lint: disable=rule`` comments;
* :mod:`repro.analysis.baseline` — committed, justified grandfathered
  findings (``analysis-baseline.json`` at the repo root);
* :mod:`repro.analysis.driver` / :mod:`~repro.analysis.reporters` /
  :mod:`~repro.analysis.cli` — file walking, filtering, text/JSON output.

Run it as ``python -m repro.analysis src tests`` (exit 1 on any finding that
is neither suppressed nor baselined); ``--list-rules`` documents the battery.
"""

from .baseline import Baseline, BaselineEntry
from .driver import AnalysisResult, analyze_source, run_analysis
from .findings import Finding
from .rules import ModuleContext, Rule, all_rules, get_rule, register

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_source",
    "get_rule",
    "register",
    "run_analysis",
]
