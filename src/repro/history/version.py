"""The id-based :class:`Version` value type — the stable history handle.

A version names a point in a document's editing history: the set of events
(and through them, characters) that the document state reflects.  Internally
the algorithms address events by their *local index* in a replica's
append-only event list, but local indices are private to one replica and —
worse — silently go stale: sender-side run coalescing extends the frontier
run **in place** (`EventGraph.extend_event`), so an index-tuple snapshot taken
before the extension suddenly covers more characters than it did, and interop
splits (`EventGraph.split_event`) shift every later index.

:class:`Version` is the fix, and the one true handle applications should
hold.  It is a frozen frontier of **character ids** (:class:`EventId`), one
per branch head, each naming the *last* character the version covers on that
branch — the same convention the replication protocol uses for parent
references.  Character ids are globally unique and immutable, so a
:class:`Version`:

* survives in-place run extension (the saved id still names the old last
  character; later characters have larger seqs and are simply not covered),
* survives interop splits and re-carved syncs (ids are per-character; run
  boundaries are a local encoding detail),
* survives storage round trips and transfers between replicas (no local
  indices are embedded), and
* is hashable and comparable for *identity* (``==`` is set equality of ids;
  the causal partial order lives in :class:`~repro.history.history.History`
  / :class:`~repro.core.causal_graph.CausalGraph`, which need a graph).

The empty version (:data:`ROOT`) denotes the document before any event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from ..core.ids import EventId

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.event_graph import EventGraph

__all__ = ["Version", "ROOT"]


@dataclass(frozen=True, init=False)
class Version:
    """A frozen, id-based version (frontier) of a document's history.

    Args:
        ids: the frontier's character ids — any iterable of :class:`EventId`
            or plain ``(agent, seq)`` pairs.  Each id names the **last**
            character covered on its branch.  Duplicates are dropped and the
            ids are stored sorted, so two versions built from the same id set
            compare and hash equal regardless of input order.

    Complexity: construction is O(k log k) for k frontier heads (k is 1 for
    any sequential stretch of history); all accessors are O(1) or O(k).
    """

    ids: tuple[EventId, ...]

    def __init__(self, ids: Iterable[EventId | tuple[str, int]] = ()) -> None:
        normalized = tuple(sorted({EventId(agent, seq) for agent, seq in ids}))
        object.__setattr__(self, "ids", normalized)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def frontier(cls, graph: "EventGraph") -> "Version":
        """The current version of an :class:`~repro.core.event_graph.EventGraph`.

        Each frontier event is represented by the id of its last character
        (its :meth:`~repro.core.event_graph.EventGraph.dependency_id`), which
        is what keeps the handle stable if the run is later extended in
        place.  O(k) for k frontier heads.
        """
        return cls(graph.ids_from_version(graph.frontier))

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[EventId]:
        return iter(self.ids)

    def __len__(self) -> int:
        return len(self.ids)

    def __bool__(self) -> bool:
        """``False`` only for the root (empty) version."""
        return bool(self.ids)

    @property
    def is_root(self) -> bool:
        """Is this the empty version (the document before any event)?"""
        return not self.ids

    def as_tuples(self) -> tuple[tuple[str, int], ...]:
        """The ids as plain ``(agent, seq)`` tuples (JSON-friendly)."""
        return tuple((eid.agent, eid.seq) for eid in self.ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.ids:
            return "Version(ROOT)"
        return f"Version({', '.join(str(eid) for eid in self.ids)})"


#: The empty version: the state of every document before any event.
ROOT = Version()
