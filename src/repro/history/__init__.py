"""Id-based versions and history browsing (the stable snapshot subsystem).

Public surface:

* :class:`Version` — a frozen frontier of character ids; the stable handle
  for any point in a document's history (survives in-place run extension,
  interop re-carving and storage round trips).
* :data:`ROOT` — the empty version (the document before any event).
* :class:`History` — version algebra (compare/meet/join) and time travel
  (``text_at`` / ``diff`` / ``checkout``) over a replica's event graph,
  implemented by resuming the merge engine's walker machinery.
* :func:`apply_ops` — apply a diff's operations to a text.

See ``docs/architecture.md`` ("History browsing") for worked examples.
"""

from .version import ROOT, Version
from .history import History, apply_ops

__all__ = ["History", "ROOT", "Version", "apply_ops"]
