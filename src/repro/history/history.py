"""Id-based history browsing over a replica's event graph.

:class:`History` is the query side of a :class:`~repro.core.document.Document`:
it turns the durable event graph into *stable* version handles
(:class:`~repro.history.version.Version`), compares them under the causal
partial order, and reconstructs texts and diffs between them by **resuming
the merge engine's walker machinery** — a partial replay from the nearest
critical version (paper §3.5–3.6), not a full history replay, whenever the
requested versions allow it.

Id-based versions are the one true handle: every id names a character, and
character ids are immune to the two mutations that invalidate local-index
snapshots (in-place frontier-run extension and interop run splits).
Resolving a handle against the live graph may *split* stored runs at the
named boundaries — a semantic no-op that makes the covered character set
exact — which is the same machinery replication uses for mid-run parent
references.

Cost model (N = events in history, W = events since the nearest critical
version, k = events between the two versions):

====================================================  ==================
operation                                             cost
====================================================  ==================
``version()`` / ``versions()``                        O(1) / O(N)
``compare(a, b)`` / ``join(a, b)``                    O(events between)
``meet(a, b)``                                        O(N)
``diff(a, b)``, ``a`` an ancestor of ``b``            O(W + k) walker work
``diff(a, b)``, ``a`` a critical version              O(k) walker work
``diff(a, b)``, concurrent / backwards                O(|text_a|·|text_b|)
``text_at(v)``, forward of the last ``text_at``       O(W + k) walker work
``text_at(v)``, cold                                  O(|Events(v)|)
====================================================  ==================
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING, Any, Sequence

from ..core.causal_graph import CausalGraph
from ..core.event_graph import EventGraph
from ..core.ids import Operation, delete_op, insert_op
from ..core.merge_engine import MergeEngine, MergeEngineStats
from ..core.oplog import OpLog
from .version import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (Document owns us)
    from ..core.document import Document

__all__ = ["History"]

#: Local-index version tuples (the internal representation).
_IndexVersion = tuple[int, ...]


def apply_ops(text: str, ops: Sequence[Operation]) -> str:
    """Apply an in-order list of index-based operations to ``text``.

    Convenience for consumers of :meth:`History.diff` (tests, examples, the
    fuzzer's stability property).  O(total op length + len(text)) per call.
    """
    for op in ops:
        text = op.apply_to(text)
    return text


class History:
    """Version handles, version algebra and time travel for one replica.

    Owned by a :class:`~repro.core.document.Document` (``document.history``);
    can also be constructed standalone over any :class:`OpLog` + engine pair
    (e.g. over a graph decoded from storage — see
    :meth:`History.over_graph`).

    Args:
        oplog: the replica's event graph wrapper.
        engine: the replica's persistent merge engine, whose walker and
            critical-cut tracker the history queries resume.
    """

    def __init__(self, oplog: OpLog, engine: MergeEngine) -> None:
        self.oplog = oplog
        self.engine = engine
        #: The last materialised checkout: ``(version, text)``.  Forward
        #: browsing (``text_at`` of a descendant version) resumes from it via
        #: a walker diff instead of replaying from the root.  Stored id-based,
        #: so it stays valid across splits and in-place extensions.
        self._checkout_cache: tuple[Version, str] | None = None
        #: Default agent names already handed to checkouts by this instance
        #: (the graph only reveals a branch's name once it merges back).
        self._checkout_agents: set[str] = set()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def over_graph(cls, graph: EventGraph, **walker_options: Any) -> "History":
        """A standalone history over a bare event graph (e.g. one decoded
        from storage).  Builds a read-only ``OpLog``/engine pair around the
        graph; O(1) — nothing is replayed until a query asks for text.
        """
        from ..rope import Rope

        oplog = OpLog()
        oplog.graph = graph
        oplog.causal = CausalGraph(graph)
        engine = MergeEngine(oplog, Rope(), walker_options)
        if engine.tracker is not None:
            engine.tracker.rebuild()
        return cls(oplog, engine)

    @classmethod
    def from_bytes(cls, data: bytes, **walker_options: Any) -> "History":
        """A standalone history decoded from a stored event-graph file
        (v2 or v3, sniffed).  Materialises the graph once; for deferred
        hydration use :attr:`repro.storage.LazyDecodedFile.history`, which
        decodes the history columns only when first asked.
        """
        from ..storage.container import decode_file

        return cls.over_graph(decode_file(data).graph, **walker_options)

    @property
    def graph(self) -> EventGraph:
        return self.oplog.graph

    @property
    def causal(self) -> CausalGraph:
        return self.oplog.causal

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------
    def version(self) -> Version:
        """The replica's current version (its frontier), as a stable handle.

        O(k) for k frontier heads.  The handle stays exact even if the
        frontier run is later extended in place: it names the run's current
        last character, and the extension's characters get larger seqs.
        """
        return Version.frontier(self.graph)

    def versions(self) -> list[Version]:
        """One version handle per run event, in local order (history browsing).

        The handle for event ``e`` covers ``Events({e})`` — the document as
        ``e``'s author saw it right after typing ``e``.  O(N).
        """
        graph = self.graph
        return [Version((graph.dependency_id(i),)) for i in range(len(graph))]

    def version_of(self, index_version: Sequence[int]) -> Version:
        """Convert an internal local-index version into a stable handle.

        The escape hatch for code that already holds index tuples (walker
        internals, tests).  O(k log runs).
        """
        return Version(self.graph.ids_from_version(tuple(index_version)))

    def resolve(self, version: Version) -> _IndexVersion:
        """Resolve a handle to the current local-index version.

        Each id names the last character covered on its branch; if that id
        now falls mid-run (the run was extended in place, or a peer's coarser
        carving was ingested), the stored run is **split** at the boundary — a
        semantic no-op — so the returned indices cover exactly the handle's
        characters.  O(k log runs), plus O(N) per split actually performed.

        Raises:
            KeyError: if an id is not covered by this graph (the version
                references events this replica has not seen).
        """
        return self.resolve_all(version)[0]

    def resolve_all(self, *versions: Version) -> list[_IndexVersion]:
        """Resolve several handles **jointly** against the current graph.

        Resolution can split stored runs, and a split shifts every later
        index — so index tuples obtained one at a time can go stale while the
        next handle resolves.  This performs every boundary split first (the
        split pass is idempotent) and only then reads indices, so all the
        returned tuples are consistent with the final carving.  Every
        multi-version operation (compare, diff, meet, join, the checkout
        cache) resolves through here.
        """
        graph = self.graph
        for version in versions:
            for eid in version.ids:
                graph.dependency_index(eid)  # splits at the boundary if mid-run
        return [
            tuple(sorted({graph.locate(eid)[0] for eid in version.ids}))
            for version in versions
        ]

    # ------------------------------------------------------------------
    # Version algebra (the causal partial order)
    # ------------------------------------------------------------------
    def compare(self, a: Version, b: Version) -> str:
        """Partial-order comparison: ``"equal"``, ``"before"`` (a ⊂ b),
        ``"after"`` (a ⊃ b) or ``"concurrent"``.

        Cost is the priority-queue diff of §3.2: proportional to the events
        between the two versions and their common ancestors, not to history.
        """
        ia, ib = self.resolve_all(a, b)
        return self.causal.compare_versions(ia, ib)

    def contains(self, version: Version, other: Version) -> bool:
        """Does ``version`` causally include everything in ``other``?

        True iff ``compare(other, version)`` is ``"equal"`` or ``"before"``.
        """
        return self.compare(other, version) in ("equal", "before")

    def join(self, a: Version, b: Version) -> Version:
        """The least upper bound: the version covering both ``a`` and ``b``
        (``Events(join) = Events(a) ∪ Events(b)``).  Cost of a diff plus the
        frontier reduction over the combined heads."""
        ia, ib = self.resolve_all(a, b)
        return self.version_of(self.causal.merge_versions(ia, ib))

    def meet(self, a: Version, b: Version) -> Version:
        """The greatest lower bound: the most recent common ancestor version
        (``Events(meet) = Events(a) ∩ Events(b)``).  O(N) — it materialises
        both ancestor sets."""
        ia, ib = self.resolve_all(a, b)
        return self.version_of(self.causal.meet_versions(ia, ib))

    # ------------------------------------------------------------------
    # Time travel
    # ------------------------------------------------------------------
    def text_at(self, version: Version) -> str:
        """Reconstruct the document text at ``version``.

        Resumes the merge engine's walker machinery rather than replaying
        the full history whenever it can: if ``version`` is a descendant of
        the previously materialised checkout (the common case when browsing
        history forward), only the events between the two are replayed —
        from the nearest critical version, exactly like a live merge (§3.6).
        A cold lookup replays ``Events(version)`` once and primes the cache.

        Returns:
            The document text at ``version`` (independent of later edits,
            in-place run extensions and re-carved interop syncs).
        """
        cached = self._checkout_cache
        if cached is None:
            indices = self.resolve(version)
        else:
            cached_version, cached_text = cached
            indices, cached_indices = self.resolve_all(version, cached_version)
            if cached_indices == indices:
                return cached_text
            if self.causal.compare_versions(cached_indices, indices) == "before":
                ops = self.engine.history_ops(cached_indices, indices)
                text = apply_ops(cached_text, ops)
                self._checkout_cache = (version, text)
                return text
        text = apply_ops("", self.engine.history_ops((), indices))
        self._checkout_cache = (version, text)
        return text

    def diff(self, a: Version, b: Version) -> list[Operation]:
        """The operations transforming ``text_at(a)`` into ``text_at(b)``.

        When ``a`` is an ancestor of ``b`` the diff is computed by the walker:
        the window from the nearest critical version up to ``a`` is replayed
        silently and only ``Events(b) - Events(a)`` emit operations — O(W + k)
        walker work, and O(k) when ``a`` is itself a critical version (the
        replay base *is* ``a``; ``MergeEngineStats.last_history_events_touched``
        proves it).  For concurrent or backwards pairs there is no replayable
        event set, so the texts are materialised and a character-level diff is
        emitted instead (O(|text_a|·|text_b|) worst case; counted in
        ``MergeEngineStats.history_text_diffs``).
        """
        ia, ib = self.resolve_all(a, b)
        if ia == ib:
            return []
        if self.causal.compare_versions(ia, ib) == "before":
            return self.engine.history_ops(ia, ib)
        self.engine.stats.history_text_diffs += 1
        return _text_diff(self.text_at(a), self.text_at(b), stats=self.engine.stats)

    def checkout(self, version: Version, *, agent: str | None = None) -> "Document":
        """Materialise ``version`` as a fresh, independent :class:`Document`.

        The new replica contains exactly ``Events(version)`` (exported in
        portable form and re-ingested, so its run carving is self-consistent)
        and can edit and merge like any other replica — a branch rooted at a
        historical version.  It inherits the owner's configuration (walker
        backend and options, merge-engine mode, run coalescing).
        O(|Events(version)|).

        Args:
            agent: agent name for the new replica.  Agent names carry the
                same global-uniqueness contract as :class:`Document` agents:
                two branches editing under one name collide on
                ``(agent, seq)`` ids and can never be merged back together.
                The default is ``"<owner>-checkout"`` with the first numeric
                suffix not already used — by an earlier checkout of this
                instance, or by any agent visible in the graph (so branches
                that merged back stay protected across restarts).  Sessions
                that check out from *separate* copies of the same document
                concurrently cannot see each other and must pass explicit,
                distinct names here, exactly as they must for their
                :class:`Document` replicas.
        """
        from ..core.document import Document

        closure = sorted(self.causal.ancestors(self.resolve(version)))
        events = self.oplog.export_events(closure)
        if agent is None:
            base = f"{self.oplog.agent or 'history'}-checkout"
            agent, n = base, 1
            while agent in self._checkout_agents or self.graph.next_seq_for(agent) > 0:
                n += 1
                agent = f"{base}-{n}"
            self._checkout_agents.add(agent)
        doc = Document(
            agent,
            incremental=self.engine.incremental,
            coalesce_local_runs=self.oplog.coalesce_local_runs,
            **self.engine.walker_options,
        )
        doc.apply_remote_events(events)
        return doc


#: Above this many character pairs (``len(a) * len(b)``) the quadratic
#: ``SequenceMatcher`` fallback is guarded: the inputs are first trimmed to
#: the region between their common prefix and suffix (linear), and only the
#: trimmed middles go through difflib.  Without the guard a single
#: server-side diff/checkout request over two long concurrent texts could pin
#: an event loop for seconds.
QUADRATIC_DIFF_LIMIT = 1 << 20


def _trim_common_affixes(a: str, b: str) -> tuple[int, int]:
    """Lengths of the longest common prefix and suffix of ``a`` and ``b``
    (non-overlapping: prefix wins ties).  O(len(a) + len(b))."""
    limit = min(len(a), len(b))
    prefix = 0
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    while suffix < limit - prefix and a[-1 - suffix] == b[-1 - suffix]:
        suffix += 1
    return prefix, suffix


def _text_diff(a: str, b: str, *, stats: "MergeEngineStats | None" = None) -> list[Operation]:
    """A minimal-ish edit script from ``a`` to ``b`` (difflib opcodes).

    Used for version pairs with no replayable event set between them
    (concurrent or backwards).  The returned operations apply in order:
    positions account for the shifts earlier operations introduce.

    ``SequenceMatcher`` is O(|a|·|b|); above :data:`QUADRATIC_DIFF_LIMIT`
    character pairs a length guard kicks in (counted in
    ``MergeEngineStats.history_diff_guards``): the common prefix and suffix
    are trimmed off first — concurrent versions of one document share most of
    their text, so this usually collapses the quadratic part to the small
    disputed middle — and if even the trimmed middles stay over the limit the
    diff degrades to a coarse replace (one delete + one insert), keeping the
    cost linear at the price of a non-minimal edit script.
    """
    if len(a) * len(b) > QUADRATIC_DIFF_LIMIT:
        if stats is not None:
            stats.history_diff_guards += 1
        prefix, suffix = _trim_common_affixes(a, b)
        mid_a = a[prefix : len(a) - suffix]
        mid_b = b[prefix : len(b) - suffix]
        if len(mid_a) * len(mid_b) > QUADRATIC_DIFF_LIMIT:
            ops: list[Operation] = []
            if mid_a:
                ops.append(delete_op(prefix, len(mid_a)))
            if mid_b:
                ops.append(insert_op(prefix, mid_b))
            return ops
        return [
            Operation(op.kind, op.pos + prefix, op.content, op.length)
            for op in _text_diff(mid_a, mid_b)
        ]
    ops = []
    shift = 0
    matcher = difflib.SequenceMatcher(None, a, b, autojunk=False)
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        # Position in the partially transformed text; computed before the
        # delete updates the shift so a replace inserts where it deleted.
        pos = i1 + shift
        if tag in ("delete", "replace"):
            ops.append(delete_op(pos, i2 - i1))
            shift -= i2 - i1
        if tag in ("insert", "replace"):
            ops.append(insert_op(pos, b[j1:j2]))
            shift += j2 - j1
    return ops
